package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/topo"
)

// TestSpecKeyCanonicalisesDefaults locks in that a spec spelling a default
// out loud keys identically to one leaving it blank — the serving layer
// would otherwise split one logical workload across two resident sessions.
func TestSpecKeyCanonicalisesDefaults(t *testing.T) {
	base := Spec{
		Algorithm: SUMMA,
		Opts: core.Options{
			Shape: matrix.Square(64), Grid: topo.Grid{S: 4, T: 4}, BlockSize: 16,
		},
	}
	explicit := base
	explicit.Opts.Broadcast = sched.Binomial
	explicit.Opts.OuterBlockSize = 16 // ignored by SUMMA — must not split the key
	explicit.Opts.Segments = 1        // the non-chain default — ditto
	if base.Key() != explicit.Key() {
		t.Fatalf("defaulted and explicit specs key differently:\n  %s\n  %s", base.Key(), explicit.Key())
	}

	different := base
	different.Opts.Broadcast = sched.VanDeGeijn
	if base.Key() == different.Key() {
		t.Fatal("distinct broadcasts must key differently")
	}

	// Segments matter exactly when the chain broadcast reads them.
	chain := base
	chain.Opts.Broadcast = sched.Chain
	chain4 := chain
	chain4.Opts.Segments = 4
	if chain.Key() == chain4.Key() {
		t.Fatal("chain pipeline depths must key differently")
	}
	segOnSumma := base
	segOnSumma.Opts.Segments = 4
	if base.Key() != segOnSumma.Key() {
		t.Fatal("segments under a non-chain broadcast must not split the key")
	}

	// HSUMMA's outer block B is execution-relevant there, and only there.
	h, err := topo.FactorGroups(topo.Grid{S: 4, T: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hbase := base
	hbase.Algorithm = HSUMMA
	hbase.Opts.Groups = h
	hBeqB := hbase
	hBeqB.Opts.OuterBlockSize = 16 // B = b, the default
	if hbase.Key() != hBeqB.Key() {
		t.Fatal("HSUMMA with implicit and explicit B = b must share a key")
	}
	hB32 := hbase
	hB32.Opts.OuterBlockSize = 32
	if hbase.Key() == hB32.Key() {
		t.Fatal("distinct HSUMMA outer blocks must key differently")
	}
}
