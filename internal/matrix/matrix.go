// Package matrix provides dense row-major float64 matrices and the block
// manipulation primitives the SUMMA-family algorithms are built on: strided
// views, block extraction/insertion, and deterministic generators used by
// tests and experiments.
//
// A Dense value owns (or aliases) a []float64 backing slice with an explicit
// leading dimension (Stride), so sub-matrix views share storage with their
// parent exactly like BLAS/LAPACK leading-dimension conventions. All
// SUMMA-family pivot row/column extraction is expressed through these views.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of float64 values. Element (i,j) lives at
// Data[i*Stride+j]. A Dense may be a view into a larger matrix, in which case
// Stride exceeds Cols and Data aliases the parent's backing array.
type Dense struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// ErrShape reports incompatible matrix dimensions.
var ErrShape = errors.New("matrix: incompatible shapes")

// New allocates a zeroed r×c matrix with a tight stride.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromSlice wraps an existing backing slice as an r×c matrix with a tight
// stride. The slice is aliased, not copied; len(data) must be at least r*c.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) < r*c {
		panic(fmt.Sprintf("matrix: slice of len %d cannot hold %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: data[:r*c]}
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// IsView reports whether the matrix aliases a larger backing array (its
// stride is wider than its column count).
func (m *Dense) IsView() bool { return m.Stride != m.Cols }

// View returns an r×c sub-matrix view rooted at (i,j). The view shares
// storage with m: writes through the view are visible in m. A view of a
// shape-only matrix (nil Data, as produced by virtual transports that elide
// element storage) is itself shape-only.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 || m.Data == nil {
		return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: nil}
	}
	off := i*m.Stride + j
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off : off+(r-1)*m.Stride+c]}
}

// Clone returns a tightly packed deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m; shapes must match. Views are handled row by
// row so strides may differ.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy %dx%d <- %dx%d: %v", m.Rows, m.Cols, src.Rows, src.Cols, ErrShape))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src.Data[i*src.Stride:i*src.Stride+src.Cols])
	}
}

// Pack serialises the matrix (view or not) into a tight row-major slice,
// appending to dst. It returns the extended slice. Pack is how blocks are
// marshalled onto the wire by the message-passing layer.
func (m *Dense) Pack(dst []float64) []float64 {
	for i := 0; i < m.Rows; i++ {
		dst = append(dst, m.Data[i*m.Stride:i*m.Stride+m.Cols]...)
	}
	return dst
}

// Unpack fills the matrix from a tight row-major slice produced by Pack.
// It returns the number of elements consumed.
func (m *Dense) Unpack(src []float64) int {
	need := m.Rows * m.Cols
	if len(src) < need {
		panic(fmt.Sprintf("matrix: unpack needs %d elements, have %d", need, len(src)))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], src[i*m.Cols:(i+1)*m.Cols])
	}
	return need
}

// Zero sets every element to zero, respecting views.
func (m *Dense) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] = v
		}
	}
}

// Add accumulates src into m element-wise.
func (m *Dense) Add(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		dst := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		s := src.Data[i*src.Stride : i*src.Stride+src.Cols]
		for j := range dst {
			dst[j] += s[j]
		}
	}
}

// Scale multiplies every element by alpha.
func (m *Dense) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for j := range row {
			row[j] *= alpha
		}
	}
}

// Transpose returns a new tightly packed transpose of m.
func (m *Dense) Transpose() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Stride+i] = m.Data[i*m.Stride+j]
		}
	}
	return out
}

// Equal reports exact element-wise equality of shape and values.
func Equal(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.Data[i*a.Stride+j] != b.Data[i*b.Stride+j] {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the max-norm of (a-b). It panics on shape mismatch.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	max := 0.0
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			d := math.Abs(a.Data[i*a.Stride+j] - b.Data[i*b.Stride+j])
			if d > max {
				max = d
			}
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squares of elements).
func (m *Dense) FrobeniusNorm() float64 {
	sum := 0.0
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Stride : i*m.Stride+m.Cols]
		for _, v := range row {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// String renders small matrices for debugging; large matrices are summarised.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%dx%d, stride=%d, fro=%.4g)", m.Rows, m.Cols, m.Stride, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
