package matrix

import (
	"errors"
	"fmt"
)

// Shape is the global GEMM problem shape: C (M×N) += A (M×K) · B (K×N).
// The paper's analysis and experiments fix M = N = K = n (the square
// benchmark); Shape carries the three dimensions independently so the
// whole stack — distribution, algorithms, cost models, planner,
// simulators — handles tall, wide and fat-K rectangular workloads with
// the square problem as the special case Square(n).
type Shape struct {
	// M is the row count of A and C.
	M int `json:"m"`
	// N is the column count of B and C.
	N int `json:"n"`
	// K is the contraction dimension: columns of A, rows of B.
	K int `json:"k"`
}

// Square returns the paper's square n×n×n shape — the shorthand every
// config layer keeps accepting as a plain n.
func Square(n int) Shape { return Shape{M: n, N: n, K: n} }

// IsZero reports whether the shape is unset (the "defer to the square
// shorthand" sentinel used by the config layers).
func (s Shape) IsZero() bool { return s == Shape{} }

// IsSquare reports M = N = K, the only case the Cannon and Fox baselines
// (and the paper's closed-form tables) cover.
func (s Shape) IsSquare() bool { return s.M == s.N && s.N == s.K }

// Validate rejects non-positive dimensions with an error naming them, so
// Multiply, Simulate and Plan all report the same diagnosis.
func (s Shape) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("matrix: invalid GEMM shape M=%d N=%d K=%d (every dimension must be positive)", s.M, s.N, s.K)
	}
	return nil
}

// Flops returns the multiply-add count 2·M·N·K of one GEMM of this shape.
func (s Shape) Flops() float64 { return 2 * float64(s.M) * float64(s.N) * float64(s.K) }

// MinDim returns the smallest of the three dimensions — the ceiling any
// panel width must respect on skinny problems.
func (s Shape) MinDim() int {
	min := s.M
	if s.N < min {
		min = s.N
	}
	if s.K < min {
		min = s.K
	}
	return min
}

func (s Shape) String() string {
	if s.IsSquare() {
		return fmt.Sprintf("n=%d", s.N)
	}
	return fmt.Sprintf("M=%d N=%d K=%d", s.M, s.N, s.K)
}

// ErrSquareOnly is the shared restriction error for the square-only
// baselines (Cannon, Fox): they require M = N = K on a square process
// grid. Every surface (Multiply, Simulate, Plan, the planner's candidate
// enumeration) wraps this error, so errors.Is works identically across
// all of them.
var ErrSquareOnly = errors.New("algorithm is square-only: it requires M = N = K on a square process grid")
