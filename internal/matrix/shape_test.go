package matrix

import (
	"strings"
	"testing"
)

func TestShapeBasics(t *testing.T) {
	if s := Square(8); s != (Shape{M: 8, N: 8, K: 8}) || !s.IsSquare() || s.IsZero() {
		t.Fatalf("Square(8) = %+v", s)
	}
	if (Shape{}).IsSquare() != true {
		t.Fatal("zero shape trivially square") // degenerate but consistent
	}
	if !(Shape{}).IsZero() {
		t.Fatal("zero shape not IsZero")
	}
	if s := (Shape{M: 4, N: 2, K: 8}); s.IsSquare() {
		t.Fatalf("%v reported square", s)
	}
	if got := (Shape{M: 3, N: 5, K: 7}).Flops(); got != 2*3*5*7 {
		t.Fatalf("Flops = %g", got)
	}
	if got := (Shape{M: 9, N: 5, K: 7}).MinDim(); got != 5 {
		t.Fatalf("MinDim = %d", got)
	}
}

func TestShapeValidate(t *testing.T) {
	if err := Square(16).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Shape{{}, {M: 4, N: 4}, {M: -1, N: 4, K: 4}, {M: 4, N: 0, K: 4}} {
		err := s.Validate()
		if err == nil {
			t.Fatalf("%+v accepted", s)
		}
		// The error must name the dimensions so every public surface
		// reports the same diagnosis.
		if !strings.Contains(err.Error(), "M=") || !strings.Contains(err.Error(), "K=") {
			t.Fatalf("error does not name dimensions: %v", err)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := Square(64).String(); got != "n=64" {
		t.Fatalf("square String = %q", got)
	}
	if got := (Shape{M: 8, N: 4, K: 2}).String(); got != "M=8 N=4 K=2" {
		t.Fatalf("rect String = %q", got)
	}
}
