package matrix

// Deterministic matrix generators. Experiments and tests need reproducible
// inputs without importing math/rand everywhere; a small SplitMix64 PRNG
// keeps generation fast, seedable and identical across platforms.

// rngState implements SplitMix64, a tiny high-quality 64-bit PRNG.
type rngState uint64

func (s *rngState) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1).
func (s *rngState) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Random returns an r×c matrix with deterministic pseudo-random entries in
// [-1,1), derived from seed.
func Random(r, c int, seed uint64) *Dense {
	m := New(r, c)
	st := rngState(seed)
	for i := range m.Data {
		m.Data[i] = 2*st.float64() - 1
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// Indexed returns an r×c matrix with element (i,j) = base + i*c + j. Useful
// for asserting exact data movement: every element value encodes its global
// position, so any misrouted block is immediately visible.
func Indexed(r, c int, base float64) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Data[i*m.Stride+j] = base + float64(i*c+j)
		}
	}
	return m
}

// Constant returns an r×c matrix filled with v.
func Constant(r, c int, v float64) *Dense {
	m := New(r, c)
	m.Fill(v)
	return m
}
