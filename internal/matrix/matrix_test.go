package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	m.Set(1, 0, -2)
	if m.At(0, 1) != 3.5 || m.At(1, 0) != -2 || m.At(0, 0) != 0 {
		t.Fatalf("set/at mismatch: %v", m)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	m.Set(1, 2, 42)
	if data[5] != 42 {
		t.Fatal("FromSlice must alias, not copy")
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := Indexed(4, 4, 0)
	v := m.View(1, 1, 2, 2)
	if !v.IsView() {
		t.Fatal("expected a strided view")
	}
	if v.At(0, 0) != 5 || v.At(1, 1) != 10 {
		t.Fatalf("view content wrong: %v", v)
	}
	v.Set(0, 0, -1)
	if m.At(1, 1) != -1 {
		t.Fatal("write through view not visible in parent")
	}
}

func TestViewOfView(t *testing.T) {
	m := Indexed(6, 6, 0)
	v := m.View(1, 1, 4, 4).View(1, 1, 2, 2)
	if v.At(0, 0) != m.At(2, 2) || v.At(1, 1) != m.At(3, 3) {
		t.Fatalf("nested view wrong: got %v want %v", v.At(0, 0), m.At(2, 2))
	}
}

func TestViewBoundsPanic(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view did not panic")
		}
	}()
	m.View(1, 1, 3, 3)
}

func TestEmptyView(t *testing.T) {
	m := New(3, 3)
	v := m.View(1, 1, 0, 0)
	if v.Rows != 0 || v.Cols != 0 {
		t.Fatal("empty view should have zero dims")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := Indexed(3, 3, 0)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone must not alias")
	}
	if c.IsView() {
		t.Fatal("clone must be tightly packed")
	}
}

func TestCloneOfViewIsTight(t *testing.T) {
	m := Indexed(4, 4, 0)
	c := m.View(1, 1, 2, 2).Clone()
	if c.Stride != 2 {
		t.Fatalf("clone stride = %d, want 2", c.Stride)
	}
	if c.At(0, 0) != 5 {
		t.Fatalf("clone content wrong: %v", c)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := Indexed(5, 7, 0)
	v := m.View(1, 2, 3, 4)
	buf := v.Pack(nil)
	if len(buf) != 12 {
		t.Fatalf("pack length %d, want 12", len(buf))
	}
	dst := New(3, 4)
	n := dst.Unpack(buf)
	if n != 12 {
		t.Fatalf("unpack consumed %d, want 12", n)
	}
	if MaxAbsDiff(dst, v.Clone()) != 0 {
		t.Fatal("pack/unpack round trip lost data")
	}
}

func TestUnpackIntoView(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Unpack([]float64{1, 2, 3, 4})
	if m.At(1, 1) != 1 || m.At(1, 2) != 2 || m.At(2, 1) != 3 || m.At(2, 2) != 4 {
		t.Fatalf("unpack into view misplaced data: %v", m)
	}
	if m.At(0, 0) != 0 || m.At(3, 3) != 0 {
		t.Fatal("unpack into view leaked outside the view")
	}
}

func TestZeroRespectsViews(t *testing.T) {
	m := Constant(4, 4, 7)
	m.View(1, 1, 2, 2).Zero()
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Fatal("view not zeroed")
	}
	if m.At(0, 0) != 7 || m.At(3, 3) != 7 || m.At(1, 3) != 7 {
		t.Fatal("zero leaked outside view")
	}
}

func TestAddScale(t *testing.T) {
	a := Constant(2, 3, 1)
	b := Indexed(2, 3, 0)
	a.Add(b)
	if a.At(1, 2) != 1+5 {
		t.Fatalf("add wrong: %v", a)
	}
	a.Scale(2)
	if a.At(1, 2) != 12 {
		t.Fatalf("scale wrong: %v", a)
	}
}

func TestTranspose(t *testing.T) {
	m := Indexed(2, 3, 0)
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := int(seed%7) + 1
		c := int(seed/7%7) + 1
		m := Random(r, c, seed)
		return Equal(m, m.Transpose().Transpose())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := Indexed(3, 3, 0)
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatal("identical matrices not Equal")
	}
	b.Set(2, 2, b.At(2, 2)+0.5)
	if Equal(a, b) {
		t.Fatal("different matrices Equal")
	}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", d)
	}
	if Equal(a, New(3, 4)) {
		t.Fatal("shape mismatch reported Equal")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("fro = %v, want 5", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(8, 8, 42)
	b := Random(8, 8, 42)
	c := Random(8, 8, 43)
	if !Equal(a, b) {
		t.Fatal("same seed must give same matrix")
	}
	if Equal(a, c) {
		t.Fatal("different seeds gave identical matrices")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("random value %v outside [-1,1)", v)
		}
	}
}

func TestIndexedEncodesPosition(t *testing.T) {
	m := Indexed(3, 5, 100)
	if m.At(0, 0) != 100 || m.At(2, 4) != 100+14 {
		t.Fatalf("indexed values wrong: %v %v", m.At(0, 0), m.At(2, 4))
	}
}

// Property: packing a view then unpacking into a fresh matrix preserves all
// elements for arbitrary geometry.
func TestQuickPackUnpack(t *testing.T) {
	f := func(seed uint64) bool {
		rows := int(seed%5) + 2
		cols := int(seed/5%5) + 2
		m := Random(rows+2, cols+2, seed)
		v := m.View(1, 1, rows, cols)
		dst := New(rows, cols)
		dst.Unpack(v.Pack(nil))
		return MaxAbsDiff(dst, v.Clone()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCopyFromStrideMismatch(t *testing.T) {
	src := Indexed(4, 4, 0).View(0, 0, 2, 2)
	dst := New(2, 2)
	dst.CopyFrom(src)
	if dst.At(1, 1) != src.At(1, 1) {
		t.Fatal("copy with differing strides wrong")
	}
}

func TestStringSummaries(t *testing.T) {
	small := Indexed(2, 2, 0)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if s := big.String(); len(s) == 0 || len(s) > 200 {
		t.Fatalf("big matrix String should be a summary, got %d bytes", len(s))
	}
}
