package hsumma

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/hockney"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Machine is the Hockney platform model (α latency, β reciprocal bandwidth
// per element — the paper's convention — and γ seconds per flop).
type Machine = hockney.Model

// Platform bundles a machine model with its contention description.
type Platform = platform.Platform

// Platform presets from the paper's evaluation (Section V).
var (
	PlatformGrid5000           = platform.Grid5000
	PlatformBlueGeneP          = platform.BlueGeneP
	PlatformExascale           = platform.Exascale
	PlatformGrid5000Calibrated = platform.Grid5000Calibrated
	PlatformBGPCalibrated      = platform.BlueGenePCalibrated
)

// SimConfig describes one simulated run at arbitrary scale.
type SimConfig struct {
	// Shape is the GEMM problem C (M×N) += A (M×K)·B (K×N); the zero
	// value defers to N, the square shorthand.
	Shape Shape
	// N is the square matrix dimension (ignored when Shape is set).
	N         int
	Procs     int
	Grid      *[2]int // optional explicit grid
	Algorithm Algorithm
	Groups    int // HSUMMA group count (0 = closest feasible to √p)
	// BlockSize is the paper's b; 0 means "auto" under the same shared
	// default rule Multiply uses (tune.DefaultBlockSize).
	BlockSize int
	// OuterBlockSize is HSUMMA's B (0 = b).
	OuterBlockSize int
	// Levels configures AlgMultilevel (outermost first).
	Levels    []Level
	Broadcast sched.Algorithm
	Segments  int
	// Threads is the per-rank thread budget for the local multiplies (the
	// hybrid MPI+OpenMP knob); the virtual engines charge compute at
	// flops / Speedup(Threads). 0 and 1 both mean serial ranks and leave
	// virtual times bitwise unchanged.
	Threads int
	// StrassenLevels and StrassenInnerGroups configure AlgStrassen's
	// quadrant recursion depth and HSUMMA bottom, exactly as in Config.
	StrassenLevels, StrassenInnerGroups int
	// LocalStrassen runs the rank-local sub-cubic kernel under any
	// algorithm; the virtual engines charge its reduced flop count.
	// StrassenCutoff is the kernel's recursion cutoff (0 = blas default).
	LocalStrassen  bool
	StrassenCutoff int
	Machine        Machine
	// Contention enables the platform's link-sharing model (needs
	// Platform set) — an ablation beyond the paper's congestion-free
	// assumption.
	Contention bool
	Platform   *Platform
	// Overlap enables communication/computation overlap (double
	// buffering), the paper's §VI opportunity; off reproduces the
	// paper's non-overlapped implementation.
	Overlap bool
	// Engine selects the virtual execution engine: EngineGoroutine,
	// EngineEvent, or EngineAuto (the default, also the zero value).
	// The engines produce bit-identical results; auto picks the event
	// engine for collective-only algorithms without overlap, where it is
	// roughly an order of magnitude faster at full scale.
	Engine Engine
	// Trace records per-rank phase spans on the virtual timeline; the
	// recorder is returned in SimResult.Trace. Tracing only observes the
	// clocks: simulated times are bit-identical either way.
	Trace bool
}

// SimResult reports simulated execution and communication times in
// seconds, as the paper's figures do, plus the virtual traffic counters —
// which are identical, per rank, to what a live run of the same
// configuration measures (the engine's parity invariant).
type SimResult struct {
	Total   float64
	Comm    float64
	Compute float64
	// Messages and Bytes are totals across all ranks, counted exactly as
	// the live runtime counts them.
	Messages int64
	Bytes    int64
	// Groups is the group count actually used (relevant when it was
	// auto-selected).
	Groups int
	// Algorithm and BlockSize echo the configuration actually executed —
	// what the planner picked when the request said AlgAuto or b=0.
	Algorithm Algorithm
	BlockSize int
	// Engine reports the virtual execution engine that ran the
	// simulation (what EngineAuto resolved to).
	Engine Engine
	// Shape is the execution shape actually simulated — the requested
	// shape rounded up to the algorithm's divisibility constraints,
	// exactly what a live run of this configuration executes.
	Shape Shape
	// Trace holds the per-rank span timeline when SimConfig.Trace was
	// set (virtual timestamps); nil otherwise.
	Trace *Trace
}

// Simulate executes the configured algorithm — the same implementation,
// resolved through the same spec, that Multiply runs — on the simnet
// virtual communicator and returns its Hockney-model times. All five
// algorithms are supported; a simulated run moves no matrix elements, so
// it scales to the paper's 16384-rank BlueGene/P and beyond. Rectangular
// problems set Shape (SimulateShape is the explicit-shape convenience);
// N remains the square shorthand.
func Simulate(cfg SimConfig) (SimResult, error) {
	alg := cfg.Algorithm
	if alg == "" {
		// Simulate's default is SUMMA — the baseline every figure sweeps
		// against — where Multiply defaults to the paper's HSUMMA.
		alg = AlgSUMMA
	}
	// A Platform alone is a complete machine description: default the
	// Hockney model from it rather than silently simulating on a
	// zero-cost machine (all-zero timings).
	if cfg.Machine == (Machine{}) && cfg.Platform != nil {
		cfg.Machine = cfg.Platform.Model
	}
	shape := cfg.Shape
	if shape.IsZero() {
		shape = SquareShape(cfg.N)
	}
	procs := cfg.Procs
	if procs == 0 && cfg.Grid != nil {
		procs = cfg.Grid[0] * cfg.Grid[1]
	}
	if alg == AlgAuto {
		// The planner picks algorithm, grid, groups, blocks and broadcast
		// for the simulated machine; explicit Grid/BlockSize are honoured.
		planned, err := resolveSimAuto(cfg, shape, procs)
		if err != nil {
			return SimResult{}, err
		}
		cfg, alg, procs = planned, planned.Algorithm, planned.Procs
	}
	// BlockSize: 0 means "auto" here exactly as in Multiply — resolveSpec
	// applies the shared tune.DefaultBlockSize rule, so the two execution
	// paths of one configuration stay directly comparable.
	spec, grid, err := resolveSpec(shape, Config{
		Procs: procs, Grid: cfg.Grid, Algorithm: alg,
		Groups: cfg.Groups, BlockSize: cfg.BlockSize, OuterBlockSize: cfg.OuterBlockSize,
		Levels: cfg.Levels, Broadcast: cfg.Broadcast, Segments: cfg.Segments,
		Threads:        cfg.Threads,
		StrassenLevels: cfg.StrassenLevels, StrassenInnerGroups: cfg.StrassenInnerGroups,
		LocalStrassen: cfg.LocalStrassen, StrassenCutoff: cfg.StrassenCutoff,
	})
	if err != nil {
		return SimResult{}, err
	}
	vcfg := simnet.VConfig{Model: cfg.Machine, Overlap: cfg.Overlap}
	if cfg.Contention {
		if cfg.Platform == nil {
			return SimResult{}, fmt.Errorf("hsumma: Contention requires Platform")
		}
		vcfg.Contention = simnet.ContentionFor(*cfg.Platform, grid.Size(), true)
	}
	if cfg.Trace {
		vcfg.Trace = trace.New(grid.Size())
	}
	res, stats, err := simalg.RunSpecOn(spec, vcfg, cfg.Engine)
	if err != nil {
		return SimResult{}, err
	}
	usedG := cfg.Groups
	if spec.Algorithm == AlgHSUMMA {
		usedG = spec.Opts.Groups.Groups()
	}
	out := SimResult{
		Total: res.Total, Comm: res.Comm, Compute: res.Compute,
		Groups: usedG, Algorithm: spec.Algorithm, Engine: res.Engine,
		Shape: res.Shape, Trace: vcfg.Trace,
	}
	// Cannon and Fox work on whole tiles; echoing the defaulted b would
	// suggest it mattered.
	if spec.Algorithm != AlgCannon && spec.Algorithm != AlgFox {
		out.BlockSize = spec.Opts.BlockSize
	}
	for _, s := range stats {
		out.Messages += s.SentMessages
		out.Bytes += s.SentBytes
	}
	return out, nil
}

// SimulateShape is Simulate with an explicit rectangular problem shape:
// it overrides cfg.Shape (and the N shorthand) and runs the same virtual
// execution.
func SimulateShape(shape Shape, cfg SimConfig) (SimResult, error) {
	cfg.Shape = shape
	return Simulate(cfg)
}

// ModelParams re-exports the closed-form model inputs.
type ModelParams = model.Params

// ModelCost re-exports the closed-form cost decomposition.
type ModelCost = model.Cost

// Broadcast models for ModelParams.Bcast (equation 1 of the paper).
type (
	// BinomialModel is the Table I broadcast model; note that under it
	// HSUMMA's cost is independent of G (log₂G + log₂(p/G) = log₂p).
	BinomialModel = model.BinomialTree
	// VanDeGeijnModel is the Table II broadcast model, under which the
	// interior optimum at G = √p exists.
	VanDeGeijnModel = model.VanDeGeijn
)

// Predict evaluates the paper's closed-form HSUMMA cost for G groups
// (G = 1 reproduces SUMMA). See internal/model for the Table I/II formulas.
func Predict(par ModelParams, G float64) ModelCost { return model.HSUMMA(par, G) }

// PredictOptimalG returns the communication-minimising group count and its
// predicted cost.
func PredictOptimalG(par ModelParams) (int, ModelCost) { return model.OptimalG(par, nil) }

// MinimumAtSqrtP reports the paper's interior-minimum condition
// α/β > 2nb/p (equation 10).
func MinimumAtSqrtP(par ModelParams) bool { return model.MinimumAtSqrtP(par) }

// simnetContention adapts a platform's contention description for direct
// simalg use (benches).
func simnetContention(pf Platform, p int) simnet.ContentionFunc {
	return simnet.ContentionFor(pf, p, true)
}

// ExperimentOptions re-exports the experiment harness options.
type ExperimentOptions = exp.Options

// RunExperiment runs a registered reproduction experiment (table1, table2,
// fig5…fig10, valgrid, valbgp, headline) and returns its formatted report.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := e.Run(opts)
	if err != nil {
		return "", err
	}
	return exp.Format(res), nil
}

// ExperimentIDs lists the registered experiments in order.
func ExperimentIDs() []string { return exp.IDs() }
