package hsumma

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/hockney"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Machine is the Hockney platform model (α latency, β reciprocal bandwidth
// per element — the paper's convention — and γ seconds per flop).
type Machine = hockney.Model

// Platform bundles a machine model with its contention description.
type Platform = platform.Platform

// Platform presets from the paper's evaluation (Section V).
var (
	PlatformGrid5000           = platform.Grid5000
	PlatformBlueGeneP          = platform.BlueGeneP
	PlatformExascale           = platform.Exascale
	PlatformGrid5000Calibrated = platform.Grid5000Calibrated
	PlatformBGPCalibrated      = platform.BlueGenePCalibrated
)

// SimConfig describes one simulated run at arbitrary scale.
type SimConfig struct {
	N         int
	Procs     int
	Grid      *[2]int // optional explicit grid
	Algorithm Algorithm
	Groups    int // HSUMMA group count (0 = closest feasible to √p)
	BlockSize int
	// OuterBlockSize is HSUMMA's B (0 = b).
	OuterBlockSize int
	Broadcast      sched.Algorithm
	Segments       int
	Machine        Machine
	// Contention enables the platform's link-sharing model (needs
	// Platform set) — an ablation beyond the paper's congestion-free
	// assumption.
	Contention bool
	Platform   *Platform
	// Overlap enables communication/computation overlap (double
	// buffering), the paper's §VI opportunity; off reproduces the
	// paper's non-overlapped implementation.
	Overlap bool
}

// SimResult reports simulated execution and communication times in
// seconds, as the paper's figures do.
type SimResult struct {
	Total   float64
	Comm    float64
	Compute float64
	// Groups is the group count actually used (relevant when it was
	// auto-selected).
	Groups int
}

// Simulate replays the configured algorithm's communication schedules and
// compute phases on the discrete-event simulator and returns its times.
// Supported algorithms: AlgSUMMA, AlgHSUMMA, AlgCannon.
func Simulate(cfg SimConfig) (SimResult, error) {
	var grid topo.Grid
	var err error
	if cfg.Grid != nil {
		grid, err = topo.NewGrid(cfg.Grid[0], cfg.Grid[1])
		if err == nil && grid.Size() != cfg.Procs && cfg.Procs != 0 {
			err = fmt.Errorf("hsumma: grid %v does not hold %d procs", grid, cfg.Procs)
		}
	} else {
		grid, err = topo.SquarestGrid(cfg.Procs)
	}
	if err != nil {
		return SimResult{}, err
	}
	sc := simalg.Config{
		N: cfg.N, Grid: grid,
		BlockSize:      cfg.BlockSize,
		OuterBlockSize: cfg.OuterBlockSize,
		Bcast:          cfg.Broadcast,
		Segments:       cfg.Segments,
		Machine:        cfg.Machine,
		Overlap:        cfg.Overlap,
	}
	if cfg.Contention {
		if cfg.Platform == nil {
			return SimResult{}, fmt.Errorf("hsumma: Contention requires Platform")
		}
		sc.Contention = simnet.ContentionFor(*cfg.Platform, grid.Size(), true)
	}
	usedG := cfg.Groups
	var res simalg.Result
	switch cfg.Algorithm {
	case AlgSUMMA, "":
		res, err = simalg.SUMMA(sc)
	case AlgHSUMMA:
		h, herr := resolveGroups(grid, cfg.Groups)
		if herr != nil {
			return SimResult{}, herr
		}
		usedG = h.Groups()
		sc.Groups = h
		res, err = simalg.HSUMMA(sc)
	case AlgCannon:
		res, err = simalg.Cannon(sc)
	default:
		return SimResult{}, fmt.Errorf("hsumma: Simulate does not support algorithm %q", cfg.Algorithm)
	}
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{Total: res.Total, Comm: res.Comm, Compute: res.Compute, Groups: usedG}, nil
}

// ModelParams re-exports the closed-form model inputs.
type ModelParams = model.Params

// ModelCost re-exports the closed-form cost decomposition.
type ModelCost = model.Cost

// Broadcast models for ModelParams.Bcast (equation 1 of the paper).
type (
	// BinomialModel is the Table I broadcast model; note that under it
	// HSUMMA's cost is independent of G (log₂G + log₂(p/G) = log₂p).
	BinomialModel = model.BinomialTree
	// VanDeGeijnModel is the Table II broadcast model, under which the
	// interior optimum at G = √p exists.
	VanDeGeijnModel = model.VanDeGeijn
)

// Predict evaluates the paper's closed-form HSUMMA cost for G groups
// (G = 1 reproduces SUMMA). See internal/model for the Table I/II formulas.
func Predict(par ModelParams, G float64) ModelCost { return model.HSUMMA(par, G) }

// PredictOptimalG returns the communication-minimising group count and its
// predicted cost.
func PredictOptimalG(par ModelParams) (int, ModelCost) { return model.OptimalG(par, nil) }

// MinimumAtSqrtP reports the paper's interior-minimum condition
// α/β > 2nb/p (equation 10).
func MinimumAtSqrtP(par ModelParams) bool { return model.MinimumAtSqrtP(par) }

// simnetContention adapts a platform's contention description for direct
// simalg use (benches).
func simnetContention(pf Platform, p int) simnet.ContentionFunc {
	return simnet.ContentionFor(pf, p, true)
}

// ExperimentOptions re-exports the experiment harness options.
type ExperimentOptions = exp.Options

// RunExperiment runs a registered reproduction experiment (table1, table2,
// fig5…fig10, valgrid, valbgp, headline) and returns its formatted report.
func RunExperiment(id string, opts ExperimentOptions) (string, error) {
	e, err := exp.ByID(id)
	if err != nil {
		return "", err
	}
	res, err := e.Run(opts)
	if err != nil {
		return "", err
	}
	return exp.Format(res), nil
}

// ExperimentIDs lists the registered experiments in order.
func ExperimentIDs() []string { return exp.IDs() }
