package hsumma

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// TestPhaseStatsConsistency checks the always-on per-phase aggregation:
// the phase breakdown must sum to the critical rank's communication time,
// local multiplies must be timed, and the busy-imbalance ratio is max/mean
// so it can never drop below 1.
func TestPhaseStatsConsistency(t *testing.T) {
	n := 64
	a := RandomMatrix(n, n, 11)
	b := RandomMatrix(n, n, 12)
	_, st, err := Multiply(a, b, Config{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 16, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, sec := range st.CommSecondsByPhase {
		sum += sec
	}
	if math.Abs(sum-st.MaxRankCommSeconds) > 1e-9+1e-9*st.MaxRankCommSeconds {
		t.Fatalf("phase breakdown sums to %g, MaxRankCommSeconds is %g", sum, st.MaxRankCommSeconds)
	}
	if st.GemmSeconds <= 0 {
		t.Fatalf("GemmSeconds = %g, want > 0", st.GemmSeconds)
	}
	if st.BusyImbalance < 1 {
		t.Fatalf("BusyImbalance = %g, want >= 1", st.BusyImbalance)
	}
	if _, ok := st.CommSecondsByPhase["bcast"]; !ok {
		t.Fatalf("HSUMMA phase breakdown %v has no bcast entry", st.CommSecondsByPhase)
	}
}

// TestMultiplyTracedMatchesUntraced is the zero-cost-when-disabled
// contract's correctness half: tracing must only observe the run, so the
// traced product is bit-identical to the untraced one.
func TestMultiplyTracedMatchesUntraced(t *testing.T) {
	n := 48
	a := RandomMatrix(n, n, 21)
	b := RandomMatrix(n, n, 22)
	cfg := Config{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 8, Groups: 2}
	plain, stPlain, err := Multiply(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, stTraced, rec, err := MultiplyTraced(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(plain, traced); d != 0 {
		t.Fatalf("traced result differs from untraced by %g, want bit-identical", d)
	}
	if stPlain.Messages != stTraced.Messages || stPlain.Bytes != stTraced.Bytes {
		t.Fatalf("traced traffic %d msgs/%d bytes, untraced %d/%d",
			stTraced.Messages, stTraced.Bytes, stPlain.Messages, stPlain.Bytes)
	}
	if rec == nil {
		t.Fatal("MultiplyTraced returned a nil recorder")
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	seenGemm, seenHost := false, false
	for _, sp := range spans {
		if sp.Phase == trace.PhaseGemm {
			seenGemm = true
		}
		if sp.Rank == trace.HostRank {
			seenHost = true
		}
	}
	if !seenGemm || !seenHost {
		t.Fatalf("trace missing expected spans (gemm=%v, host=%v)", seenGemm, seenHost)
	}
}

// TestSimulateTraceBitIdentical checks the virtual half of the contract:
// enabling tracing must not move a single virtual clock.
func TestSimulateTraceBitIdentical(t *testing.T) {
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		base := SimConfig{
			N: 256, Procs: 16, Algorithm: AlgHSUMMA, Groups: 4, BlockSize: 32,
			Machine: PlatformGrid5000().Model, Engine: eng,
		}
		plain, err := Simulate(base)
		if err != nil {
			t.Fatal(err)
		}
		tracedCfg := base
		tracedCfg.Trace = true
		traced, err := Simulate(tracedCfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Total != traced.Total || plain.Comm != traced.Comm {
			t.Fatalf("%v: tracing moved the virtual clocks: total %v -> %v, comm %v -> %v",
				eng, plain.Total, traced.Total, plain.Comm, traced.Comm)
		}
		if plain.Messages != traced.Messages || plain.Bytes != traced.Bytes {
			t.Fatalf("%v: tracing changed traffic", eng)
		}
		if traced.Trace == nil {
			t.Fatalf("%v: SimConfig.Trace set but SimResult.Trace is nil", eng)
		}
		if plain.Trace != nil {
			t.Fatalf("%v: untraced run returned a recorder", eng)
		}
	}
}

// TestSpanCountParityLiveVsVirtual pins the structural invariant behind
// the whole tracing design: a live run and a virtual run of the same
// configuration execute the same communication schedule, so they must
// record the same number of spans per (rank, phase) — for every algorithm
// and on both virtual engines. Durations differ (wall vs Hockney time);
// the span structure may not.
func TestSpanCountParityLiveVsVirtual(t *testing.T) {
	n := 64
	a := RandomMatrix(n, n, 31)
	b := RandomMatrix(n, n, 32)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"summa", Config{Procs: 4, Algorithm: AlgSUMMA, BlockSize: 16}},
		{"hsumma", Config{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 16, Groups: 2}},
		{"multilevel", Config{Procs: 4, Algorithm: AlgMultilevel, BlockSize: 16,
			Levels: []Level{{I: 2, J: 2, BlockSize: 16}}}},
		{"cannon", Config{Procs: 4, Algorithm: AlgCannon}},
		{"fox", Config{Procs: 4, Algorithm: AlgFox}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, rec, err := MultiplyTraced(a, b, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			live := rankCounts(rec)
			sim := SimConfig{
				N: n, Procs: tc.cfg.Procs, Algorithm: tc.cfg.Algorithm,
				Groups: tc.cfg.Groups, BlockSize: tc.cfg.BlockSize,
				Levels:  tc.cfg.Levels,
				Machine: PlatformGrid5000().Model, Trace: true,
			}
			for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
				sim.Engine = eng
				res, err := Simulate(sim)
				if err != nil {
					t.Fatal(err)
				}
				virt := rankCounts(res.Trace)
				if len(virt) != len(live) {
					t.Fatalf("%v: %d (rank,phase) buckets, live has %d\nlive: %v\nvirt: %v",
						eng, len(virt), len(live), live, virt)
				}
				for key, want := range live {
					if got := virt[key]; got != want {
						t.Fatalf("%v: rank %d phase %v: %d spans, live recorded %d",
							eng, key.Rank, key.Phase, got, want)
					}
				}
			}
		})
	}
}

// TestCriticalPathWallFidelity pins the critical-path report's core
// invariant on both execution paths, for every algorithm: the report's
// wall equals the run it analysed. On the virtual engines that equality
// is exact — the simulated total *is* the latest span end. On the live
// path the trace epoch opens after spec resolution, so the critical path
// covers most, but never more, of Stats.WallSeconds.
func TestCriticalPathWallFidelity(t *testing.T) {
	n := 64
	a := RandomMatrix(n, n, 41)
	b := RandomMatrix(n, n, 42)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"summa", Config{Procs: 4, Algorithm: AlgSUMMA, BlockSize: 16}},
		{"hsumma", Config{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 16, Groups: 2}},
		{"multilevel", Config{Procs: 4, Algorithm: AlgMultilevel, BlockSize: 16,
			Levels: []Level{{I: 2, J: 2, BlockSize: 16}}}},
		{"cannon", Config{Procs: 4, Algorithm: AlgCannon}},
		{"fox", Config{Procs: 4, Algorithm: AlgFox}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, st, rec, err := MultiplyTraced(a, b, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := CriticalPath(rec)
			if rep == nil || rep.WallSeconds <= 0 {
				t.Fatalf("live critical path = %+v, want positive wall", rep)
			}
			if rep.WallSeconds > st.WallSeconds*1.01 {
				t.Fatalf("live critical-path wall %.6fs exceeds Stats.WallSeconds %.6fs",
					rep.WallSeconds, st.WallSeconds)
			}
			if rep.WallSeconds < 0.25*st.WallSeconds {
				t.Fatalf("live critical-path wall %.6fs covers under a quarter of Stats.WallSeconds %.6fs",
					rep.WallSeconds, st.WallSeconds)
			}

			sim := SimConfig{
				N: 256, Procs: 16, Algorithm: tc.cfg.Algorithm,
				Groups: tc.cfg.Groups, BlockSize: 32,
				Machine: PlatformGrid5000().Model, Trace: true,
			}
			if tc.cfg.Algorithm == AlgMultilevel {
				sim.Levels = []Level{{I: 2, J: 2, BlockSize: 32}}
			}
			if tc.cfg.Algorithm == AlgCannon || tc.cfg.Algorithm == AlgFox {
				sim.BlockSize = 0 // whole-tile algorithms
			}
			for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
				sim.Engine = eng
				res, err := Simulate(sim)
				if err != nil {
					t.Fatal(err)
				}
				srep := CriticalPath(res.Trace)
				if srep == nil {
					t.Fatalf("%v: no critical path over the simulated trace", eng)
				}
				if diff := math.Abs(srep.WallSeconds - res.Total); diff > 1e-9*res.Total {
					t.Fatalf("%v: simulated critical-path wall %.12f != Result.Total %.12f (diff %g)",
						eng, srep.WallSeconds, res.Total, diff)
				}
				// Busy + wait always reconstructs the wall, and the gating
				// rank's dominant phase carries real time.
				for _, ra := range srep.Ranks {
					if math.Abs(ra.BusySeconds+ra.WaitSeconds-srep.WallSeconds) > 1e-9*srep.WallSeconds {
						t.Fatalf("%v: rank %d busy %.9f + wait %.9f != wall %.9f",
							eng, ra.Rank, ra.BusySeconds, ra.WaitSeconds, srep.WallSeconds)
					}
				}
				if srep.GatingPhaseSeconds <= 0 {
					t.Fatalf("%v: gating phase %q carries no time", eng, srep.GatingPhase)
				}
			}
		})
	}
}

// rankCounts projects a recorder's span counts onto rank-owned spans only
// (the host timeline exists only on the live path by design).
func rankCounts(rec *Trace) map[trace.CountKey]int {
	out := make(map[trace.CountKey]int)
	for key, n := range rec.Counts() {
		if key.Rank >= 0 {
			out[key] = n
		}
	}
	return out
}
