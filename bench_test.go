package hsumma

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`), plus the ablation benches
// listed in DESIGN.md §4. Figure benches execute the full paper-scale
// simulation once per iteration and report the regenerated headline
// quantities as custom metrics (seconds of simulated time), so the bench
// output doubles as the reproduction record; EXPERIMENTS.md snapshots it.

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simalg"
	"repro/internal/topo"
)

// benchExperiment runs a registered experiment at full fidelity and
// reports its first series' minimum as a metric.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *exp.Result
	for i := 0; i < b.N; i++ {
		res, err = e.Run(exp.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil && len(res.Series) > 0 {
		min := res.Series[0].Y[0]
		for _, y := range res.Series[0].Y {
			if y < min {
				min = y
			}
		}
		b.ReportMetric(min, "best_"+sanitize(res.Series[0].Name)+"_s")
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkTable1 regenerates Table I (binomial-tree cost comparison).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (Van de Geijn cost comparison).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig5 regenerates Figure 5 (Grid'5000 G sweep, b=64).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (Grid'5000 G sweep, b=512).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (Grid'5000 scalability).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (BG/P 16384-core G sweep).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (BG/P scalability 2048→16384).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (exascale prediction).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkHeadline regenerates the §VI headline ratios.
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// BenchmarkRuntimeSUMMA and siblings measure the *real* in-process runtime
// (goroutine ranks moving real matrix blocks) — wall-clock numbers for the
// correctness path, n=256 on 16 ranks.
func benchRuntime(b *testing.B, cfg Config) {
	b.Helper()
	n := 256
	a := RandomMatrix(n, n, 1)
	bb := RandomMatrix(n, n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Multiply(a, bb, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeSUMMA measures real SUMMA on the goroutine runtime.
func BenchmarkRuntimeSUMMA(b *testing.B) {
	benchRuntime(b, Config{Procs: 16, Algorithm: AlgSUMMA, BlockSize: 32})
}

// BenchmarkRuntimeHSUMMA measures real HSUMMA (G=4) on the runtime.
func BenchmarkRuntimeHSUMMA(b *testing.B) {
	benchRuntime(b, Config{Procs: 16, Algorithm: AlgHSUMMA, Groups: 4, BlockSize: 32})
}

// BenchmarkRuntimeCannon measures the Cannon baseline on the runtime.
func BenchmarkRuntimeCannon(b *testing.B) {
	benchRuntime(b, Config{Procs: 16, Algorithm: AlgCannon})
}

// BenchmarkRuntimeFox measures the Fox baseline on the runtime.
func BenchmarkRuntimeFox(b *testing.B) {
	benchRuntime(b, Config{Procs: 16, Algorithm: AlgFox})
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationBroadcast compares broadcast algorithms inside the
// simulated BG/P HSUMMA at the paper's configuration.
func BenchmarkAblationBroadcast(b *testing.B) {
	g := topo.Grid{S: 128, T: 128}
	h, _ := topo.FactorGroups(g, 128)
	for _, alg := range []sched.Algorithm{sched.Binomial, sched.VanDeGeijn, sched.Binary, sched.Chain} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			var comm float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(simalg.Config{
					N: 65536, Grid: g, BlockSize: 256, Groups: h,
					Bcast: alg, Segments: 8, Machine: platform.BlueGenePCalibrated().Model,
				})
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			b.ReportMetric(comm, "sim_comm_s")
		})
	}
}

// BenchmarkAblationBlockSize sweeps the paper's b on the simulated BG/P.
func BenchmarkAblationBlockSize(b *testing.B) {
	g := topo.Grid{S: 128, T: 128}
	h, _ := topo.FactorGroups(g, 128)
	for _, blk := range []int{64, 128, 256, 512} {
		blk := blk
		b.Run(itoa(blk), func(b *testing.B) {
			var comm float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(simalg.Config{
					N: 65536, Grid: g, BlockSize: blk, Groups: h,
					Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
				})
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			b.ReportMetric(comm, "sim_comm_s")
		})
	}
}

// BenchmarkAblationGroupShape compares square vs skewed group arrangements
// at the same G.
func BenchmarkAblationGroupShape(b *testing.B) {
	g := topo.Grid{S: 128, T: 128}
	shapes := map[string][2]int{
		"square_16x16": {16, 16},
		"skewed_4x64":  {4, 64},
		"skewed_64x4":  {64, 4},
	}
	for name, ij := range shapes {
		name, ij := name, ij
		b.Run(name, func(b *testing.B) {
			h, err := topo.NewHier(g, ij[0], ij[1])
			if err != nil {
				b.Fatal(err)
			}
			var comm float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(simalg.Config{
					N: 65536, Grid: g, BlockSize: 256, Groups: h,
					Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
				})
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			b.ReportMetric(comm, "sim_comm_s")
		})
	}
}

// BenchmarkAblationContention toggles the link-sharing model on the BG/P
// torus (the paper assumes none).
func BenchmarkAblationContention(b *testing.B) {
	pf := platform.BlueGeneP()
	g := topo.Grid{S: 64, T: 64}
	h, _ := topo.FactorGroups(g, 64)
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := simalg.Config{
				N: 16384, Grid: g, BlockSize: 256, Groups: h,
				Bcast: sched.VanDeGeijn, Machine: pf.Model,
			}
			if on {
				cfg.Contention = simnetContention(pf, g.Size())
			}
			var comm float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(cfg)
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			b.ReportMetric(comm, "sim_comm_s")
		})
	}
}

// BenchmarkAblationInnerOuterBlock compares b=B against b<B (paper §III:
// "the block size inside a group should be less than or equal to the block
// size between groups").
func BenchmarkAblationInnerOuterBlock(b *testing.B) {
	g := topo.Grid{S: 128, T: 128}
	h, _ := topo.FactorGroups(g, 128)
	for _, c := range []struct {
		name string
		b, B int
	}{{"b256_B256", 256, 256}, {"b64_B256", 64, 256}, {"b64_B512", 64, 512}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var comm float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(simalg.Config{
					N: 65536, Grid: g, BlockSize: c.b, OuterBlockSize: c.B, Groups: h,
					Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
				})
				if err != nil {
					b.Fatal(err)
				}
				comm = res.Comm
			}
			b.ReportMetric(comm, "sim_comm_s")
		})
	}
}

// BenchmarkAblationMultilevel compares the real-runtime message counts of
// flat SUMMA, two-level and three-level hierarchies (paper §VI future
// work) on a 64-rank grid.
func BenchmarkAblationMultilevel(b *testing.B) {
	n := 128
	a := RandomMatrix(n, n, 1)
	bb := RandomMatrix(n, n, 2)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{Procs: 64, Algorithm: AlgMultilevel, BlockSize: 4}},
		{"two_level", Config{Procs: 64, Algorithm: AlgMultilevel, BlockSize: 4,
			Levels: []Level{{I: 2, J: 2, BlockSize: 8}}}},
		{"three_level", Config{Procs: 64, Algorithm: AlgMultilevel, BlockSize: 4,
			Levels: []Level{{I: 2, J: 2, BlockSize: 16}, {I: 2, J: 2, BlockSize: 8}}}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var msgs int64
			for i := 0; i < b.N; i++ {
				_, st, err := Multiply(a, bb, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				msgs = st.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// BenchmarkAblationOverlap quantifies the paper's §VI overlap opportunity
// on the simulated BG/P: non-overlapped (the paper's implementation) vs
// double-buffered communication/computation overlap.
func BenchmarkAblationOverlap(b *testing.B) {
	g := topo.Grid{S: 128, T: 128}
	h, _ := topo.FactorGroups(g, 128)
	for _, overlap := range []bool{false, true} {
		overlap := overlap
		name := "off"
		if overlap {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := simalg.HSUMMA(simalg.Config{
					N: 65536, Grid: g, BlockSize: 256, Groups: h,
					Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
					Overlap: overlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				total = res.Total
			}
			b.ReportMetric(total, "sim_total_s")
		})
	}
}

// fullScaleBGPConfig is the paper's Figure 8 configuration (p=16384,
// n=65536) on the calibrated BG/P — the workload the execution engines
// are benchmarked on.
func fullScaleBGPConfig(b *testing.B, ex Engine) simalg.Config {
	b.Helper()
	g := topo.Grid{S: 128, T: 128}
	h, err := topo.FactorGroups(g, 128)
	if err != nil {
		b.Fatal(err)
	}
	return simalg.Config{
		N: 65536, Grid: g, BlockSize: 256, Groups: h,
		Bcast: sched.VanDeGeijn, Machine: platform.BlueGenePCalibrated().Model,
		Executor: ex,
	}
}

// BenchmarkFullScaleBGPSim measures the host wall time of one full
// paper-scale BG/P virtual run on the goroutine engine (one goroutine
// per rank, sharded collective rendezvous). The pre-shard baseline on a
// single core was ~17 s per run; sharding brought it to ~14 s; the
// remaining cost is the ~15M goroutine park/wake rendezvous, which is
// what the event engine (see the Event twin below) eliminates.
// allocs/op tracks the GC pressure the simnet pools keep bounded.
func BenchmarkFullScaleBGPSim(b *testing.B) {
	cfg := fullScaleBGPConfig(b, EngineGoroutine)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simalg.HSUMMA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullScaleBGPSimEvent is the event-engine twin of
// BenchmarkFullScaleBGPSim: the same run on internal/evsim (recorded
// rank programs, single-threaded replay, rank-symmetry fast path),
// bit-identical results at a fraction of the wall time (~5.5× on one
// core at the time of writing; tracked in BENCH_sim.json by CI).
func BenchmarkFullScaleBGPSimEvent(b *testing.B) {
	cfg := fullScaleBGPConfig(b, EngineEvent)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simalg.HSUMMA(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanColdRefine quantifies what the event engine buys the
// autotuner: a cold plan's stage-2 refinement (TopK virtual runs) on
// each engine, same picks by the parity invariant, different wall time.
func BenchmarkPlanColdRefine(b *testing.B) {
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		eng := eng
		b.Run(string(eng), func(b *testing.B) {
			// 1024 ranks keeps the virtual runs heavy enough that the
			// refinement stage dominates the cold plan (the quantity the
			// engines differ on) while staying under the auto-resolution
			// threshold that would skip refinement entirely.
			cfg := PlanConfig{
				Platform: PlatformBGPCalibrated(), N: 16384, Procs: 1024,
				Quick: true, NoCache: true, Engine: eng,
			}
			for i := 0; i < b.N; i++ {
				if _, err := Plan(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanColdVsCached quantifies what the plan cache buys: a cold
// plan pays the analytic scan plus TopK virtual runs, a cached one a map
// lookup — the serving-workload property the planner is memoised for.
func BenchmarkPlanColdVsCached(b *testing.B) {
	cfg := PlanConfig{Platform: PlatformGrid5000(), N: 512, Procs: 16, Quick: true}
	b.Run("cold", func(b *testing.B) {
		cfg := cfg
		cfg.NoCache = true
		for i := 0; i < b.N; i++ {
			if _, err := Plan(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, err := Plan(cfg); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl, err := Plan(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if !pl.FromCache {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// BenchmarkModelEvaluation measures the closed-form evaluation itself.
func BenchmarkModelEvaluation(b *testing.B) {
	par := model.Params{N: 1 << 22, P: 1 << 20, B: 256,
		Machine: platform.Exascale().Model, Bcast: model.VanDeGeijn{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.HSUMMA(par, 1024).Comm()
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
