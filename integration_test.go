package hsumma

// Cross-path integration tests: the three computation paths (real runtime,
// discrete-event simulator, closed-form model) must tell one consistent
// story about the same algorithm. These tests exercise the public API end
// to end.

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/topo"
)

// The runtime's measured traffic for one SUMMA run must equal the byte
// count predicted from the broadcast schedules: n/b steps, each moving one
// (n/s)×b panel over every row (via a (t−1)-edge tree) and one b×(n/t)
// panel over every column.
func TestRuntimeTrafficMatchesSchedulePrediction(t *testing.T) {
	n, p, b := 32, 16, 4
	g, _ := topo.SquarestGrid(p) // 4x4
	a := RandomMatrix(n, n, 1)
	bb := RandomMatrix(n, n, 2)
	_, st, err := Multiply(a, bb, Config{Procs: p, Algorithm: AlgSUMMA, BlockSize: b, Broadcast: BcastBinomial})
	if err != nil {
		t.Fatal(err)
	}
	steps := n / b
	aPanelBytes := 8 * (n / g.S) * b
	bPanelBytes := 8 * b * (n / g.T)
	// Binomial tree moves (size-1) copies of the payload per broadcast.
	want := int64(steps * (g.S*(g.T-1)*aPanelBytes + g.T*(g.S-1)*bPanelBytes))
	if st.Bytes != want {
		t.Fatalf("runtime moved %d bytes, schedule predicts %d", st.Bytes, want)
	}
}

// HSUMMA's aggregate traffic at any G with tree broadcasts equals SUMMA's:
// the paper's "the amount of data sent is the same as in SUMMA".
func TestTrafficInvariantAcrossG(t *testing.T) {
	n, p, b := 32, 16, 4
	a := RandomMatrix(n, n, 3)
	bb := RandomMatrix(n, n, 4)
	_, ref, err := Multiply(a, bb, Config{Procs: p, Algorithm: AlgSUMMA, BlockSize: b})
	if err != nil {
		t.Fatal(err)
	}
	for _, G := range []int{1, 2, 4, 8, 16} {
		_, st, err := Multiply(a, bb, Config{Procs: p, Algorithm: AlgHSUMMA, Groups: G, BlockSize: b})
		if err != nil {
			t.Fatal(err)
		}
		if st.Bytes != ref.Bytes {
			t.Fatalf("G=%d traffic %d != SUMMA %d", G, st.Bytes, ref.Bytes)
		}
	}
}

// Under the binomial broadcast the closed-form model says HSUMMA's cost is
// exactly G-invariant; the simulator must reproduce that invariance through
// entirely different machinery (virtual clocks over generated schedules).
func TestSimulatorReproducesBinomialGInvariance(t *testing.T) {
	m := Machine{Alpha: 1e-5, Beta: 1e-9}
	var ref float64
	for i, G := range []int{1, 4, 16, 64, 256} {
		res, err := Simulate(SimConfig{
			N: 2048, Procs: 256, BlockSize: 64, Groups: G,
			Algorithm: AlgHSUMMA, Broadcast: BcastBinomial, Machine: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Comm
			continue
		}
		if math.Abs(res.Comm-ref) > 1e-9*ref {
			t.Fatalf("binomial G=%d comm %g differs from G=1's %g", G, res.Comm, ref)
		}
	}
}

// The simulator's SUMMA-vs-HSUMMA verdict must agree with the closed-form
// condition (eq. 10) on both sides of the threshold.
func TestSimulatorAgreesWithConditionBothSides(t *testing.T) {
	const n, p, b = 2048, 256, 64
	for _, c := range []struct {
		name      string
		m         Machine
		shouldWin bool
	}{
		{"latency-bound", Machine{Alpha: 1e-3, Beta: 1e-11}, true},
		{"bandwidth-bound", Machine{Alpha: 1e-9, Beta: 1e-7}, false},
	} {
		par := ModelParams{N: n, P: p, B: b, Machine: c.m, Bcast: VanDeGeijnModel{}}
		if MinimumAtSqrtP(par) != c.shouldWin {
			t.Fatalf("%s: condition verdict unexpected", c.name)
		}
		su, err := Simulate(SimConfig{N: n, Procs: p, BlockSize: b, Algorithm: AlgSUMMA,
			Broadcast: BcastVanDeGeijn, Machine: c.m})
		if err != nil {
			t.Fatal(err)
		}
		hs, err := Simulate(SimConfig{N: n, Procs: p, BlockSize: b, Algorithm: AlgHSUMMA,
			Groups: 16, Broadcast: BcastVanDeGeijn, Machine: c.m})
		if err != nil {
			t.Fatal(err)
		}
		simWin := hs.Comm < su.Comm*(1-1e-9)
		if simWin != c.shouldWin {
			t.Fatalf("%s: simulator says win=%v (%g vs %g), condition says %v",
				c.name, simWin, hs.Comm, su.Comm, c.shouldWin)
		}
	}
}

// All five distributed algorithms agree on the same product.
func TestAllAlgorithmsAgreeEndToEnd(t *testing.T) {
	n := 24
	a := RandomMatrix(n, n, 11)
	bb := RandomMatrix(n, n, 12)
	want := Reference(a, bb)
	for _, cfg := range []Config{
		{Procs: 4, Algorithm: AlgSUMMA, BlockSize: 3},
		{Procs: 4, Algorithm: AlgHSUMMA, Groups: 2, BlockSize: 3},
		{Procs: 4, Algorithm: AlgCannon},
		{Procs: 4, Algorithm: AlgFox},
		{Procs: 4, Algorithm: AlgMultilevel, BlockSize: 3, Levels: []Level{{I: 2, J: 1, BlockSize: 6}}},
	} {
		got, _, err := Multiply(a, bb, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Algorithm, err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("%s differs from reference by %g", cfg.Algorithm, d)
		}
	}
}

// The chain broadcast's pipeline depth is a pure performance knob: any
// segment count yields the same product.
func TestChainSegmentsDontChangeResults(t *testing.T) {
	n := 16
	a := RandomMatrix(n, n, 21)
	bb := RandomMatrix(n, n, 22)
	want := Reference(a, bb)
	for _, segs := range []int{1, 2, 5, 16, 100} {
		got, _, err := Multiply(a, bb, Config{
			Procs: 4, Algorithm: AlgSUMMA, BlockSize: 4,
			Broadcast: sched.Chain, Segments: segs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("segments=%d off by %g", segs, d)
		}
	}
}

// Overlap in the simulator is a pure scheduling change: comm time and
// compute time are individually preserved; only the total shrinks.
func TestOverlapPreservesComponents(t *testing.T) {
	m := Machine{Alpha: 1e-4, Beta: 1e-9, Gamma: 3e-10}
	mk := func(overlap bool) SimResult {
		res, err := Simulate(SimConfig{
			N: 1024, Procs: 64, BlockSize: 64, Algorithm: AlgHSUMMA, Groups: 8,
			Broadcast: BcastVanDeGeijn, Machine: m, Overlap: overlap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, lapped := mk(false), mk(true)
	if math.Abs(plain.Comm-lapped.Comm) > 1e-12*plain.Comm ||
		math.Abs(plain.Compute-lapped.Compute) > 1e-12*plain.Compute {
		t.Fatal("overlap altered component accounting")
	}
	if lapped.Total > plain.Total*(1+1e-12) {
		t.Fatal("overlap increased total time")
	}
}
