// Tall-skinny rectangular GEMM: the workload class the square paper
// benchmark never exercises — C (M×N) += A (M×K)·B (K×N) with M, K ≫ N,
// the shape of activation/panel updates in training and factorisation
// pipelines.
//
// This example shows the Shape-aware planner choosing a *non-square grid
// orientation* for a tall problem (tall shapes prefer tall grids: more
// process rows shrink the M-proportional A panels every step
// broadcasts), then simulates the plan against the mismatched transposed
// grid to show what the orientation is worth, and finally verifies the
// rectangular result on the live runtime.
//
//	go run ./examples/tallskinny
package main

import (
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	pf := hsumma.PlatformGrid5000Calibrated()
	shape := hsumma.Shape{M: 8192, N: 512, K: 8192}
	const procs = 64

	// Plan: the full two-stage search (analytic scan over algorithm ×
	// grid orientation × groups × blocks × broadcast, then simulated
	// refinement of the top candidates) for the rectangular problem.
	pl, err := hsumma.Plan(hsumma.PlanConfig{
		Platform: pf, Shape: shape, Procs: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := pl.Best
	fmt.Printf("planned %s on %s over %d ranks:\n", shape, pf.Name, procs)
	fmt.Printf("  best: %s (simulated total %.4gs)\n", best.Candidate, best.SimTotal)
	if g := best.Grid; g.S > g.T {
		fmt.Printf("  the planner chose a TALL %v grid — orientation matched to M/N = %d\n",
			g, shape.M/shape.N)
	} else {
		fmt.Printf("  grid %v\n", best.Grid)
	}

	// What the orientation is worth: simulate the planner's grid against
	// the transposed (mismatched) one with the same algorithm and blocks.
	sim := func(grid [2]int) hsumma.SimResult {
		res, err := hsumma.SimulateShape(shape, hsumma.SimConfig{
			Procs: procs, Grid: &grid,
			Algorithm: best.Algorithm, Groups: best.Groups,
			BlockSize: best.BlockSize, OuterBlockSize: best.OuterBlockSize,
			Broadcast: best.Broadcast,
			Machine:   pf.Model, Platform: &pf,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	matched := sim([2]int{best.Grid.S, best.Grid.T})
	transposed := sim([2]int{best.Grid.T, best.Grid.S})
	fmt.Printf("  matched grid %dx%d:    comm %.4gs\n", best.Grid.S, best.Grid.T, matched.Comm)
	fmt.Printf("  transposed grid %dx%d: comm %.4gs (%.2fx worse)\n",
		best.Grid.T, best.Grid.S, transposed.Comm, transposed.Comm/matched.Comm)

	// Live verification at a laptop-sized scale: the same shape class,
	// distributed over real goroutine ranks, against sequential GEMM.
	small := hsumma.Shape{M: 512, N: 32, K: 512}
	a := hsumma.RandomMatrix(small.M, small.K, 1)
	b := hsumma.RandomMatrix(small.K, small.N, 2)
	c, stats, err := hsumma.Multiply(a, b, hsumma.Config{Procs: 16, Algorithm: best.Algorithm,
		Groups: best.Groups, Broadcast: best.Broadcast})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live %s on 16 ranks: max |Δ| vs sequential = %.3g (%d messages)\n",
		small, hsumma.MaxAbsDiff(c, hsumma.Reference(a, b)), stats.Messages)
}
