// BlueGene/P scenario: regenerate the paper's headline results — Figure 8
// (G sweep on 16384 cores), Figure 9 (scalability) and the §VI improvement
// ratios — on the discrete-event simulator with the calibrated Shaheen
// machine model.
//
//	go run ./examples/bluegene          # full scale (~1 minute)
//	go run ./examples/bluegene -quick
package main

import (
	"flag"
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down run")
	flag.Parse()

	for _, id := range []string{"fig8", "fig9", "headline"} {
		out, err := hsumma.RunExperiment(id, hsumma.ExperimentOptions{Quick: *quick})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
