// Quickstart: multiply two matrices with hierarchical SUMMA on 16
// in-process ranks, verify against sequential GEMM, inspect the
// communication statistics — then run the *same* algorithm on the virtual
// communicator at a scale no laptop could host with real data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	const n = 512
	a := hsumma.RandomMatrix(n, n, 1)
	b := hsumma.RandomMatrix(n, n, 2)

	// Live mode: 16 ranks arranged 4×4, split into G=4 groups of 2×2 —
	// the paper's two-level hierarchy. Every rank runs as a goroutine and
	// exchanges real matrix panels through the message-passing runtime.
	// MultiplyTraced additionally records the per-rank span timeline, so
	// we can attribute the wall clock afterwards.
	c, stats, rec, err := hsumma.MultiplyTraced(a, b, hsumma.Config{
		Procs:     16,
		Algorithm: hsumma.AlgHSUMMA,
		Groups:    4,
		BlockSize: 32,
		Broadcast: hsumma.BcastVanDeGeijn,
	})
	if err != nil {
		log.Fatal(err)
	}

	diff := hsumma.MaxAbsDiff(c, hsumma.Reference(a, b))
	fmt.Printf("HSUMMA on 16 ranks (G=4): max |Δ| vs sequential = %.3g\n", diff)
	fmt.Printf("traffic: %d messages, %d bytes, max per-rank comm %.3gs\n",
		stats.Messages, stats.Bytes, stats.MaxRankCommSeconds)

	// Plan fidelity: every resolved run carries the cost model's per-phase
	// prediction next to what the critical rank actually measured. A ratio
	// near 1 means the planner's model describes this machine; sustained
	// drift is what hsumma-serve's -drift-replan acts on. (Predictions are
	// evaluated for the configured platform model — Grid'5000 here — so on
	// a laptop the *ratios between phases* carry the signal.)
	fmt.Println("predicted vs measured (critical rank), per phase:")
	measured := map[string]float64{}
	for phase, sec := range stats.CommSecondsByPhase {
		measured[phase] = sec
	}
	measured["gemm"] = stats.GemmSeconds
	for _, phase := range []string{"scatter", "bcast", "shift", "p2p", "gemm", "gather"} {
		pred, okP := stats.PredictedSecondsByPhase[phase]
		meas, okM := measured[phase]
		if !okP && !okM {
			continue
		}
		fmt.Printf("  %-7s predicted %10.3gs   measured %10.3gs\n", phase, pred, meas)
	}
	fmt.Printf("  gemm (max rank) : %.3gs\n", stats.GemmSeconds)
	fmt.Printf("  busy imbalance  : %.3g (max/mean)\n", stats.BusyImbalance)

	// Critical-path attribution over the recorded timeline: which rank
	// gated the wall clock, and in which phase it spent that time.
	// (hsumma-run -critpath prints the full report, including the busy/wait
	// table and the top blocking edges; -trace dumps the raw spans for
	// Perfetto.)
	if rep := hsumma.CriticalPath(rec); rep != nil {
		gate := fmt.Sprintf("rank %d", rep.GatingRank)
		if rep.GatingRank == -1 {
			gate = "the host (gather)"
		}
		fmt.Printf("critical path: %s gates the %.3gs wall, dominated by %s (%.3gs)\n",
			gate, rep.WallSeconds, rep.GatingPhase, rep.GatingPhaseSeconds)
	}

	// The same multiplication with plain SUMMA, for comparison.
	_, flat, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs:     16,
		Algorithm: hsumma.AlgSUMMA,
		BlockSize: 32,
		Broadcast: hsumma.BcastVanDeGeijn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUMMA sends %d messages; HSUMMA %d — the hierarchy trades\n", flat.Messages, stats.Messages)
	fmt.Println("per-step small broadcasts for fewer, larger inter-group ones.")

	// Sim mode: the identical HSUMMA implementation, executed through the
	// simnet virtual communicator on the paper's BlueGene/P model at 1024
	// ranks, in the regime where the paper's interior-minimum condition
	// α/β > 2nb/p holds. No matrix elements exist; only Hockney virtual
	// time and the (live-identical) traffic counts advance.
	bgp := hsumma.PlatformBlueGeneP()
	sim, err := hsumma.Simulate(hsumma.SimConfig{
		N: 8192, Procs: 1024,
		Algorithm: hsumma.AlgHSUMMA, Groups: 32,
		BlockSize: 64, Broadcast: hsumma.BcastVanDeGeijn,
		Machine: bgp.Model,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := hsumma.Simulate(hsumma.SimConfig{
		N: 8192, Procs: 1024,
		Algorithm: hsumma.AlgSUMMA,
		BlockSize: 64, Broadcast: hsumma.BcastVanDeGeijn,
		Machine: bgp.Model,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated BG/P, 1024 ranks, n=8192: SUMMA comm %.3gs, HSUMMA (G=32) comm %.3gs (%.2fx)\n",
		base.Comm, sim.Comm, base.Comm/sim.Comm)

	// Shapes: everything above uses the square shorthand (a plain n means
	// the paper's n×n×n problem), but Multiply accepts any rectangular
	// C(M×N) += A(M×K)·B(K×N) — just pass rectangular matrices. Shapes
	// that do not divide the grid are zero-padded and cropped internally.
	// See examples/tallskinny for the rectangular planner and simulator.
	ta := hsumma.RandomMatrix(96, 64, 3) // A: 96×64
	tb := hsumma.RandomMatrix(64, 32, 4) // B: 64×32
	tc, _, err := hsumma.Multiply(ta, tb, hsumma.Config{Procs: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rectangular 96×64·64×32 on the same 16 ranks: max |Δ| = %.3g\n",
		hsumma.MaxAbsDiff(tc, hsumma.Reference(ta, tb)))
}
