// Quickstart: multiply two matrices with hierarchical SUMMA on 16
// in-process ranks, verify against sequential GEMM, and inspect the
// communication statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	const n = 512
	a := hsumma.RandomMatrix(n, n, 1)
	b := hsumma.RandomMatrix(n, n, 2)

	// 16 ranks arranged 4×4, split into G=4 groups of 2×2 — the paper's
	// two-level hierarchy. Every rank runs as a goroutine and exchanges
	// real matrix panels through the message-passing runtime.
	c, stats, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs:     16,
		Algorithm: hsumma.AlgHSUMMA,
		Groups:    4,
		BlockSize: 32,
		Broadcast: hsumma.BcastVanDeGeijn,
	})
	if err != nil {
		log.Fatal(err)
	}

	diff := hsumma.MaxAbsDiff(c, hsumma.Reference(a, b))
	fmt.Printf("HSUMMA on 16 ranks (G=4): max |Δ| vs sequential = %.3g\n", diff)
	fmt.Printf("traffic: %d messages, %d bytes, max per-rank comm %.3gs\n",
		stats.Messages, stats.Bytes, stats.MaxRankCommSeconds)

	// The same multiplication with plain SUMMA, for comparison.
	_, flat, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs:     16,
		Algorithm: hsumma.AlgSUMMA,
		BlockSize: 32,
		Broadcast: hsumma.BcastVanDeGeijn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUMMA sends %d messages; HSUMMA %d — the hierarchy trades\n", flat.Messages, stats.Messages)
	fmt.Println("per-step small broadcasts for fewer, larger inter-group ones.")
}
