// Strassen crossover: where does the sub-cubic algorithm actually win?
//
// Strassen's recursion trades one of the eight quadrant multiplies for
// ~18 extra quadrant additions, so each level costs 7/8 of the classic
// flops plus O(n²) overhead — a win only once n is large enough that the
// saved multiply outweighs the added passes. This example locates that
// crossover at both levels of the implementation:
//
//  1. intra-rank: wall-clock of blas.StrassenGemm (default cutoff 256)
//     against the packed classic kernel it bottoms out in, sweeping n
//     across the crossover;
//  2. inter-rank: simulated AlgStrassen against plain SUMMA at the
//     paper's BG/P scale, where the modelled win is the 7/8-per-level
//     flop saving minus the quadrant redistribution traffic;
//
// and finishes with a small live distributed Strassen run verified
// against the sequential reference.
//
//	go run ./examples/strassen
package main

import (
	"fmt"
	"log"
	"time"

	hsumma "repro"
	"repro/internal/blas"
	"repro/internal/matrix"
)

func main() {
	// 1. The local kernel crossover. Below the cutoff StrassenGemm *is*
	// the packed kernel; the ratio should cross 1 around one recursion
	// level above it (n=512 splits into 256-leaves, n=2048 compounds two
	// levels of 7/8).
	fmt.Println("intra-rank kernel: blas.StrassenGemm vs packed blas.Gemm")
	fmt.Printf("  %-6s %-10s %-12s %-12s %s\n", "n", "flops", "packed", "strassen", "ratio")
	for _, n := range []int{512, 1024, 2048} {
		a := matrix.Random(n, n, 1)
		b := matrix.Random(n, n, 2)
		c := matrix.New(n, n)
		packed := timeIt(func() { blas.Gemm(c, a, b) })
		strassen := timeIt(func() { blas.StrassenGemm(c, a, b, 0, 1) })
		fmt.Printf("  %-6d %-10s %-12s %-12s %.2fx\n",
			n,
			fmt.Sprintf("%.2f", blas.StrassenFlops(n, n, n, 0)/blas.FlopsGemm(n, n, n)),
			fmtSec(packed), fmtSec(strassen), packed.Seconds()/strassen.Seconds())
	}

	// 2. The distributed level on the BG/P machine model: one and two
	// quadrant levels against plain SUMMA at the paper's scale. The
	// simulator executes the real communication schedule, so the totals
	// include the quadrant scatter/gather traffic Strassen pays for its
	// flop saving. Note what moves and what doesn't: total messages drop
	// with each level (7 products instead of 8, on quarter-sized
	// sub-grids), but critical-path compute is flat — round-robin hosting
	// puts 2 of the 7 products on the busiest quadrant, exactly classic's
	// per-rank flops. The distributed recursion is a *communication*
	// reshaping; the flop saving lands in the local kernel (sections 1
	// and 3).
	fmt.Println("\ninter-rank: simulated on BlueGene/P, n=8192, p=64")
	bgp := hsumma.PlatformBlueGeneP()
	base := hsumma.SimConfig{
		N: 8192, Procs: 64, Platform: &bgp, BlockSize: 64,
	}
	summa := base
	summa.Algorithm = hsumma.AlgSUMMA
	for _, run := range []struct {
		name string
		mut  func(*hsumma.SimConfig)
	}{
		{"summa", func(c *hsumma.SimConfig) {}},
		{"strassen L=1", func(c *hsumma.SimConfig) { c.Algorithm = hsumma.AlgStrassen; c.StrassenLevels = 1 }},
		{"strassen L=2", func(c *hsumma.SimConfig) { c.Algorithm = hsumma.AlgStrassen; c.StrassenLevels = 2 }},
	} {
		cfg := summa
		run.mut(&cfg)
		res, err := hsumma.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s total %.4gs  compute %.4gs  comm %.4gs  (%d messages)\n",
			run.name, res.Total, res.Compute, res.Comm, res.Messages)
	}

	// 3. Where the planner turns it on by itself: few ranks × a big
	// problem leave per-rank tiles far above the kernel cutoff, and the
	// tune scorer's sub-cubic flop term makes the local kernel win the
	// ranking — Auto resolves to a plan with the sub-cubic kernel enabled,
	// no knob set by the caller.
	g5k := hsumma.PlatformGrid5000()
	pl, err := hsumma.Plan(hsumma.PlanConfig{Platform: g5k, N: 8192, Procs: 4, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner, n=8192 p=4 on %s:\n  best: %s (sub-cubic local kernel: %v)\n",
		g5k.Name, pl.Best.Candidate, pl.Best.Candidate.LocalStrassen)

	// 4. A live distributed Strassen multiply, sub-cubic at both levels,
	// checked against the sequential reference like every other algorithm.
	n, procs := 256, 16
	a := hsumma.RandomMatrix(n, n, 7)
	b := hsumma.RandomMatrix(n, n, 8)
	c, stats, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs:          procs,
		Algorithm:      hsumma.AlgStrassen,
		BlockSize:      16,
		LocalStrassen:  true,
		StrassenCutoff: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive strassen n=%d p=%d: max |Δ| = %.3g vs reference, %d messages\n",
		n, procs, hsumma.MaxAbsDiff(c, hsumma.Reference(a, b)), stats.Messages)
}

// timeIt returns the faster of two runs after a warm-up (pool buffers,
// page in operands) — minimum, because noise only ever adds time.
func timeIt(f func()) time.Duration {
	f()
	best := time.Duration(-1)
	for i := 0; i < 2; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

func fmtSec(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }
