// Autotune: the paper (§VI) notes that "the optimal number of groups …
// can be easily automated and incorporated into the implementation by
// using few iterations of HSUMMA". The internal/tune planner is that
// automation, generalised to every knob: it ranks algorithm × grid ×
// groups × block sizes × broadcast analytically, refines the top
// candidates on the discrete-event simulator, and caches the plan. This
// example prints the ranked plan for a latency-bound cluster, then runs
// the real multiplication two ways: with the plan's best candidate applied
// explicitly, and with Algorithm: AlgAuto letting the library resolve the
// same plan implicitly.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	const (
		n     = 512
		procs = 64
	)
	pf := hsumma.Platform{
		Name:  "latency-bound cluster",
		Model: hsumma.Machine{Alpha: 1e-4, Beta: 1e-9, Gamma: 1e-10},
	}

	// Quick mode matches the search AlgAuto performs below, so the second
	// multiplication's implicit plan is served from the cache.
	pl, err := hsumma.Plan(hsumma.PlanConfig{Platform: pf, N: n, Procs: procs, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned n=%d on p=%d for %s (%d candidates scanned, %d simulated):\n",
		n, procs, pf.Name, pl.Scanned, pl.Simulated)
	for i, s := range pl.Ranked {
		marker := ""
		if i == 0 {
			marker = "  <- best"
		}
		fmt.Printf("  #%d %-40s sim total %.4gs%s\n", i+1, s.Candidate, s.SimTotal, marker)
	}

	a := hsumma.RandomMatrix(n, n, 7)
	b := hsumma.RandomMatrix(n, n, 8)

	// Run the winner explicitly...
	best := pl.Best.Candidate
	c, stats, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs:          procs,
		Grid:           &[2]int{best.Grid.S, best.Grid.T},
		Algorithm:      best.Algorithm,
		Groups:         best.Groups,
		BlockSize:      best.BlockSize,
		OuterBlockSize: best.OuterBlockSize,
		Broadcast:      best.Broadcast,
		Levels:         best.Levels,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit %s: max |Δ| = %.3g, %d messages\n",
		best.Algorithm, hsumma.MaxAbsDiff(c, hsumma.Reference(a, b)), stats.Messages)

	// ...or let AlgAuto resolve the same plan (served from the cache now).
	c2, _, err := hsumma.Multiply(a, b, hsumma.Config{Procs: procs, Algorithm: hsumma.AlgAuto, Platform: &pf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AlgAuto:  max |Δ| = %.3g (plan cache: %+v)\n",
		hsumma.MaxAbsDiff(c2, hsumma.Reference(a, b)), hsumma.PlannerCounters())
}
