// Autotune: the paper (§VI) notes that "the optimal number of groups …
// can be easily automated and incorporated into the implementation by
// using few iterations of HSUMMA". This example does exactly that: it
// samples candidate group counts on the discrete-event simulator (a few
// model iterations per G), picks the winner, and then runs the real
// multiplication with it on the in-process runtime.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	const (
		n     = 512
		procs = 64
	)
	machine := hsumma.Machine{Alpha: 1e-4, Beta: 1e-9, Gamma: 1e-10} // a latency-bound cluster

	fmt.Printf("sampling group counts for n=%d on p=%d (α=%.0e):\n", n, procs, machine.Alpha)
	bestG, bestComm := 1, -1.0
	for g := 1; g <= procs; g *= 2 {
		res, err := hsumma.Simulate(hsumma.SimConfig{
			N: n, Procs: procs, BlockSize: 32, Groups: g,
			Algorithm: hsumma.AlgHSUMMA, Broadcast: hsumma.BcastVanDeGeijn,
			Machine: machine,
		})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if bestComm < 0 || res.Comm < bestComm {
			bestG, bestComm = g, res.Comm
			marker = "  <- best so far"
		}
		fmt.Printf("  G=%-4d simulated comm %.4gs%s\n", g, res.Comm, marker)
	}
	fmt.Printf("selected G=%d; running the real multiplication...\n", bestG)

	a := hsumma.RandomMatrix(n, n, 7)
	b := hsumma.RandomMatrix(n, n, 8)
	c, stats, err := hsumma.Multiply(a, b, hsumma.Config{
		Procs: procs, Algorithm: hsumma.AlgHSUMMA, Groups: bestG,
		BlockSize: 32, Broadcast: hsumma.BcastVanDeGeijn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: max |Δ| = %.3g; %d messages moved\n",
		hsumma.MaxAbsDiff(c, hsumma.Reference(a, b)), stats.Messages)
}
