// Exascale scenario: the paper's Figure 10 prediction (p = 2^20 cores,
// n = 2^22) evaluated through the closed-form model, plus the
// interior-minimum condition of equation (10).
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"
	"math"

	hsumma "repro"
)

func main() {
	out, err := hsumma.RunExperiment("fig10", hsumma.ExperimentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// The same conclusion straight from the model API.
	pf := hsumma.PlatformExascale()
	par := hsumma.ModelParams{N: 1 << 22, P: 1 << 20, B: 256, Machine: pf.Model, Bcast: hsumma.VanDeGeijnModel{}}
	fmt.Printf("condition α/β > 2nb/p holds: %v\n", hsumma.MinimumAtSqrtP(par))
	bestG, cost := hsumma.PredictOptimalG(par)
	summa := hsumma.Predict(par, 1)
	fmt.Printf("predicted optimum G=%d (√p = %d): comm %.3gs vs SUMMA %.3gs (%.2fx)\n",
		bestG, int(math.Sqrt(float64(par.P))), cost.Comm(), summa.Comm(), summa.Comm()/cost.Comm())
	fmt.Println("\nPer the paper §V-C: \"whatever stand-alone application-oblivious optimized")
	fmt.Println("broadcast algorithms are made available for exascale platforms, they cannot")
	fmt.Println("replace application specific optimizations of communication cost.\"")
}
