// Grid'5000 scenario: regenerate the paper's Figures 5–7 (Graphene
// cluster, n=8192, p=128) on the discrete-event simulator.
//
//	go run ./examples/grid5000          # full scale (paper configuration)
//	go run ./examples/grid5000 -quick   # scaled down, runs in a second
package main

import (
	"flag"
	"fmt"
	"log"

	hsumma "repro"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down run")
	flag.Parse()

	for _, id := range []string{"fig5", "fig6", "fig7"} {
		out, err := hsumma.RunExperiment(id, hsumma.ExperimentOptions{Quick: *quick})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	fmt.Println("Compare with the paper: Figure 5 shows a deep U-curve at b=64,")
	fmt.Println("Figure 6 a shallow one at b=512 (smaller latency share), and")
	fmt.Println("Figure 7 SUMMA and HSUMMA converging as p shrinks.")
}
