// Example serve demonstrates GEMM-as-a-service end to end, twice over:
//
//  1. the library face — hsumma.NewSession keeps a distributed world
//     resident so a stream of products of one shape skips spawn + plan +
//     map setup (Stats.SetupSeconds shows the amortisation);
//
//  2. the daemon face — the same machinery behind HTTP: an in-process
//     server (identical to cmd/hsumma-serve) receives concurrent
//     mixed-shape POST /multiply requests routed onto shape-keyed
//     sessions, then reports its /metrics.
//
// Run with: go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"

	hsumma "repro"
	"repro/internal/serve"
)

func main() {
	// --- 1. Library sessions -------------------------------------------
	const n, p = 256, 16
	cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA}
	sess, err := hsumma.NewSession(hsumma.SquareShape(n), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	fmt.Printf("library session %s\n", sess.Key())
	for i := 0; i < 3; i++ {
		a := hsumma.RandomMatrix(n, n, uint64(2*i+1))
		b := hsumma.RandomMatrix(n, n, uint64(2*i+2))
		_, st, err := sess.Multiply(a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  multiply %d: wall %.2fms, per-request setup %.3fms, %d messages\n",
			i+1, 1000*st.WallSeconds, 1000*st.SetupSeconds, st.Messages)
	}
	// One-shot comparison: the same product paying full setup every call.
	a := hsumma.RandomMatrix(n, n, 1)
	b := hsumma.RandomMatrix(n, n, 2)
	_, oneShot, err := hsumma.Multiply(a, b, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  one-shot Multiply for comparison: wall %.2fms, setup %.3fms\n\n",
		1000*oneShot.WallSeconds, 1000*oneShot.SetupSeconds)

	// --- 2. The daemon over HTTP ---------------------------------------
	sc := serve.NewScheduler(serve.SchedulerConfig{RankBudget: 64})
	defer sc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(sc, serve.HandlerConfig{DefaultProcs: 4})}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s (same handler as cmd/hsumma-serve)\n", url)

	// Concurrent clients with two different shapes: the scheduler routes
	// each onto the session owning its execution shape.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, k, nn := 64, 64, 64
			if i%2 == 1 {
				m, k, nn = 48, 96, 24
			}
			ra := hsumma.RandomMatrix(m, k, uint64(i+1))
			rb := hsumma.RandomMatrix(k, nn, uint64(i+10))
			body, _ := json.Marshal(map[string]any{
				"m": m, "n": nn, "k": k, "procs": 4,
				"a": ra.Pack(nil), "b": rb.Pack(nil),
			})
			resp, err := http.Post(url+"/multiply", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			var res struct {
				M, N  int
				Stats struct{ WallSeconds float64 }
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  client %d: %dx%d product in %.2fms\n", i, res.M, res.N, 1000*res.Stats.WallSeconds)
		}(i)
	}
	wg.Wait()

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	fmt.Println("\nselected /metrics:")
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "hsumma_serve_") &&
			(strings.Contains(line, "requests_total") || strings.Contains(line, "sessions_live") ||
				strings.Contains(line, "session_hits_total") || strings.Contains(line, "session_misses_total")) {
			fmt.Println("  " + line)
		}
	}
}
