package hsumma

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const tol = 1e-10

func TestMultiplyAllAlgorithms(t *testing.T) {
	n := 16
	a := RandomMatrix(n, n, 1)
	b := RandomMatrix(n, n, 2)
	want := Reference(a, b)
	cases := []Config{
		{Procs: 4, Algorithm: AlgSUMMA, BlockSize: 4},
		{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 4, Groups: 2},
		{Procs: 4, Algorithm: AlgHSUMMA, BlockSize: 2, OuterBlockSize: 8, Groups: 4},
		{Procs: 4, Algorithm: AlgCannon},
		{Procs: 4, Algorithm: AlgFox},
		{Procs: 8, Algorithm: AlgSUMMA, BlockSize: 2},
		{Procs: 8, Algorithm: AlgHSUMMA, BlockSize: 2},
		{Procs: 16, Algorithm: AlgHSUMMA, BlockSize: 4, Groups: 4, Broadcast: BcastVanDeGeijn},
		{Procs: 16, Algorithm: AlgMultilevel, BlockSize: 2},
		{Procs: 1, Algorithm: AlgSUMMA, BlockSize: 4},
	}
	for _, cfg := range cases {
		cfg := cfg
		got, st, err := Multiply(a, b, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if d := MaxAbsDiff(got, want); d > tol {
			t.Fatalf("%+v: result off by %g", cfg, d)
		}
		if cfg.Procs > 1 && st.Messages == 0 && cfg.Algorithm != AlgMultilevel {
			t.Fatalf("%+v: no traffic recorded", cfg)
		}
	}
}

func TestMultiplyDefaultsToHSUMMA(t *testing.T) {
	n := 16
	a := RandomMatrix(n, n, 3)
	b := RandomMatrix(n, n, 4)
	got, _, err := Multiply(a, b, Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, Reference(a, b)); d > tol {
		t.Fatalf("default config off by %g", d)
	}
}

func TestMultiplyExplicitGrid(t *testing.T) {
	n := 16
	a := RandomMatrix(n, n, 5)
	b := RandomMatrix(n, n, 6)
	grid := [2]int{2, 4}
	got, _, err := Multiply(a, b, Config{Procs: 8, Grid: &grid, Algorithm: AlgSUMMA, BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, Reference(a, b)); d > tol {
		t.Fatalf("explicit grid off by %g", d)
	}
	// Mismatched grid must error.
	bad := [2]int{2, 3}
	if _, _, err := Multiply(a, b, Config{Procs: 8, Grid: &bad}); err == nil {
		t.Fatal("grid/procs mismatch accepted")
	}
}

func TestMultiplyInputValidation(t *testing.T) {
	// Rectangular shapes are supported; mismatched inner dimensions are not.
	if _, _, err := Multiply(NewMatrix(4, 6), NewMatrix(5, 4), Config{Procs: 4}); err == nil {
		t.Fatal("mismatched inner dimensions accepted")
	}
	if _, _, err := Multiply(NewMatrix(4, 4), NewMatrix(4, 4), Config{Procs: 0}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, _, err := Multiply(NewMatrix(4, 4), NewMatrix(4, 4), Config{Procs: 4, Algorithm: "magic"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// The square-only baselines reject rectangular problems via the shared
	// ErrSquareOnly.
	if _, _, err := Multiply(NewMatrix(4, 6), NewMatrix(6, 4), Config{Procs: 4, Algorithm: AlgCannon}); !errors.Is(err, ErrSquareOnly) {
		t.Fatalf("Cannon on a rectangular problem: got %v, want ErrSquareOnly", err)
	}
	if _, _, err := Multiply(NewMatrix(4, 6), NewMatrix(6, 4), Config{Procs: 4, Algorithm: AlgFox}); !errors.Is(err, ErrSquareOnly) {
		t.Fatalf("Fox on a rectangular problem: got %v, want ErrSquareOnly", err)
	}
}

func TestSimulateSUMMAvsHSUMMA(t *testing.T) {
	m := Machine{Alpha: 1e-3, Beta: 1e-10, Gamma: 1e-10}
	base := SimConfig{N: 1024, Procs: 256, BlockSize: 32, Broadcast: BcastVanDeGeijn, Machine: m}
	su, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Algorithm = AlgHSUMMA
	hs, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Comm >= su.Comm {
		t.Fatalf("HSUMMA sim %g not below SUMMA %g on latency-bound machine", hs.Comm, su.Comm)
	}
	if hs.Groups <= 1 {
		t.Fatalf("auto group selection picked G=%d", hs.Groups)
	}
}

func TestSimulateCannon(t *testing.T) {
	m := Machine{Alpha: 1e-5, Beta: 1e-9}
	res, err := Simulate(SimConfig{N: 256, Procs: 16, BlockSize: 64, Algorithm: AlgCannon, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm <= 0 {
		t.Fatal("no simulated communication")
	}
}

func TestSimulateContentionNeedsPlatform(t *testing.T) {
	if _, err := Simulate(SimConfig{N: 256, Procs: 16, BlockSize: 64, Machine: Machine{Alpha: 1}, Contention: true}); err == nil {
		t.Fatal("contention without platform accepted")
	}
	pf := PlatformGrid5000()
	res, err := Simulate(SimConfig{N: 256, Procs: 16, BlockSize: 64, Machine: pf.Model, Contention: true, Platform: &pf})
	if err != nil {
		t.Fatal(err)
	}
	free, _ := Simulate(SimConfig{N: 256, Procs: 16, BlockSize: 64, Machine: pf.Model})
	if res.Comm <= free.Comm {
		t.Fatal("contention did not slow the shared-segment platform")
	}
}

func TestPredictAPI(t *testing.T) {
	pf := PlatformBlueGeneP()
	// The interior optimum exists under the Van de Geijn broadcast
	// (Table II); under the binomial model HSUMMA's cost is G-invariant.
	par := ModelParams{N: 65536, P: 16384, B: 256, Machine: pf.Model, Bcast: VanDeGeijnModel{}}
	if !MinimumAtSqrtP(par) {
		t.Fatal("paper's BG/P condition should hold")
	}
	g, cost := PredictOptimalG(par)
	if g <= 1 || cost.Comm() <= 0 {
		t.Fatalf("degenerate prediction g=%d cost=%+v", g, cost)
	}
	if Predict(par, 1).Comm() <= cost.Comm() {
		t.Fatal("optimal G not better than SUMMA endpoint")
	}
}

func TestRunExperimentAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 11 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	out, err := RunExperiment("valbgp", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "valbgp") || !strings.Contains(out, "2nb/p") {
		t.Fatalf("unexpected report:\n%s", out)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// End-to-end consistency: the runtime's measured comm traffic for HSUMMA
// at G=1 equals plain SUMMA's (the degeneracy claim at the traffic level).
func TestTrafficDegeneracy(t *testing.T) {
	n := 32
	a := RandomMatrix(n, n, 9)
	b := RandomMatrix(n, n, 10)
	_, s1, err := Multiply(a, b, Config{Procs: 16, Algorithm: AlgSUMMA, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Multiply(a, b, Config{Procs: 16, Algorithm: AlgHSUMMA, Groups: 1, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Bytes != s2.Bytes {
		t.Fatalf("G=1 traffic %d != SUMMA traffic %d", s2.Bytes, s1.Bytes)
	}
}

func TestSimulateMatchesPredictOnSquareGrid(t *testing.T) {
	m := Machine{Alpha: 1e-5, Beta: 1e-9, Gamma: 0}
	sim, err := Simulate(SimConfig{N: 512, Procs: 64, BlockSize: 64, Algorithm: AlgSUMMA, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	par := ModelParams{N: 512, P: 64, B: 64, Machine: m}
	pred := Predict(par, 1) // G=1 is SUMMA
	if rel := math.Abs(sim.Comm-pred.Comm()) / pred.Comm(); rel > 1e-9 {
		t.Fatalf("sim %g vs closed form %g (rel %g)", sim.Comm, pred.Comm(), rel)
	}
}

func TestBroadcastByName(t *testing.T) {
	cases := map[string]interface{}{
		"":                  BcastBinomial,
		"binomial":          BcastBinomial,
		"vandegeijn":        BcastVanDeGeijn,
		"vdg":               BcastVanDeGeijn,
		"scatter-allgather": BcastVanDeGeijn,
		"flat":              BcastFlat,
		"binary":            BcastBinary,
		"chain":             BcastChain,
		"pipeline":          BcastChain,
	}
	for name, want := range cases {
		got, err := BroadcastByName(name)
		if err != nil {
			t.Fatalf("BroadcastByName(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("BroadcastByName(%q) = %v, want %v", name, got, want)
		}
	}
	// Unknown names used to silently fall back to binomial; they must now
	// be rejected.
	if _, err := BroadcastByName("binomal"); err == nil {
		t.Fatal("typo'd broadcast name accepted")
	}
}

// Every algorithm Multiply runs must also run on the virtual communicator —
// the acceptance invariant of the unified engine.
func TestSimulateAllAlgorithms(t *testing.T) {
	m := Machine{Alpha: 1e-5, Beta: 1e-9, Gamma: 1e-10}
	for _, cfg := range []SimConfig{
		{N: 64, Procs: 16, BlockSize: 4, Algorithm: AlgSUMMA, Machine: m},
		{N: 64, Procs: 16, BlockSize: 4, Algorithm: AlgHSUMMA, Groups: 4, Machine: m},
		{N: 64, Procs: 16, BlockSize: 4, Algorithm: AlgMultilevel,
			Levels: []Level{{I: 2, J: 2, BlockSize: 8}}, Machine: m},
		{N: 64, Procs: 16, Algorithm: AlgCannon, Machine: m},
		{N: 64, Procs: 16, Algorithm: AlgFox, Machine: m},
	} {
		cfg := cfg
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Algorithm, err)
		}
		if res.Comm <= 0 || res.Total < res.Comm {
			t.Fatalf("%s: degenerate simulated times %+v", cfg.Algorithm, res)
		}
	}
}

// BlockSize: 0 means "auto" in Simulate exactly as in Multiply: both paths
// share one default rule (tune.DefaultBlockSize), so a zero-b simulation
// measures the same configuration a zero-b live run executes.
func TestSimulateDefaultsBlockSize(t *testing.T) {
	m := Machine{Alpha: 1e-5, Beta: 1e-9}
	res, err := Simulate(SimConfig{N: 256, Procs: 16, Algorithm: AlgSUMMA, Machine: m})
	if err != nil {
		t.Fatalf("SUMMA simulation without BlockSize rejected: %v", err)
	}
	// 256/4 = 64 per tile: the shared rule picks the largest power of two
	// ≤ 64 dividing the tile, i.e. 64.
	if res.BlockSize != 64 {
		t.Fatalf("defaulted block size %d, want 64", res.BlockSize)
	}
	explicit, err := Simulate(SimConfig{N: 256, Procs: 16, Algorithm: AlgSUMMA, BlockSize: 64, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comm != explicit.Comm || res.Bytes != explicit.Bytes {
		t.Fatalf("auto-b simulation (%g s, %d B) differs from explicit b=64 (%g s, %d B)",
			res.Comm, res.Bytes, explicit.Comm, explicit.Bytes)
	}
	if _, err := Simulate(SimConfig{N: 64, Procs: 16, Algorithm: AlgCannon, Machine: m}); err != nil {
		t.Fatalf("Cannon simulation without BlockSize rejected: %v", err)
	}
}
