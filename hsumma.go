// Package hsumma is a Go reproduction of "Hierarchical Parallel Matrix
// Multiplication on Large-Scale Distributed Memory Platforms" (Quintin,
// Hasanov, Lastovetsky — ICPP 2013, arXiv:1306.4161).
//
// It provides, behind one façade:
//
//   - Multiply: distributed dense matrix multiplication (SUMMA, the paper's
//     hierarchical HSUMMA, its multilevel generalisation, and the Cannon
//     and Fox baselines) executed on an in-process MPI-like runtime whose
//     ranks are goroutines;
//   - Simulate: the same algorithms replayed on a discrete-event Hockney
//     simulator, reproducing the paper's large-scale timing figures;
//   - Predict: the paper's closed-form cost model (Tables I–II), optimal
//     group count analysis and the exascale projection;
//   - RunExperiment: the registry of reproduction experiments, one per
//     table/figure of the paper's evaluation.
//
// See README.md for a walkthrough and EXPERIMENTS.md for paper-vs-measured
// results.
package hsumma

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Matrix is a dense row-major float64 matrix (see NewMatrix, Random).
type Matrix = matrix.Dense

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// RandomMatrix returns a deterministic pseudo-random r×c matrix with
// entries in [-1,1).
func RandomMatrix(r, c int, seed uint64) *Matrix { return matrix.Random(r, c, seed) }

// MaxAbsDiff returns the max-norm distance between two equal-shaped
// matrices — the verification metric used throughout.
func MaxAbsDiff(a, b *Matrix) float64 { return matrix.MaxAbsDiff(a, b) }

// Level describes one grouping level for AlgMultilevel (re-exported from
// the core package): the grid is partitioned into I×J groups exchanging
// panels of width BlockSize.
type Level = core.Level

// Algorithm selects a distributed multiplication algorithm.
type Algorithm string

// Available distributed algorithms.
const (
	AlgSUMMA      Algorithm = "summa"
	AlgHSUMMA     Algorithm = "hsumma"
	AlgMultilevel Algorithm = "multilevel"
	AlgCannon     Algorithm = "cannon"
	AlgFox        Algorithm = "fox"
)

// Broadcast names re-exported from the schedule layer.
const (
	BcastBinomial   = sched.Binomial
	BcastVanDeGeijn = sched.VanDeGeijn
	BcastFlat       = sched.Flat
	BcastBinary     = sched.Binary
	BcastChain      = sched.Chain
)

// BroadcastByName maps a CLI-friendly name to a broadcast algorithm; the
// empty string (and unknown names) default to binomial.
func BroadcastByName(name string) sched.Algorithm {
	switch name {
	case string(sched.VanDeGeijn), "vdg", "scatter-allgather":
		return sched.VanDeGeijn
	case string(sched.Flat):
		return sched.Flat
	case string(sched.Binary):
		return sched.Binary
	case string(sched.Chain), "pipeline":
		return sched.Chain
	default:
		return sched.Binomial
	}
}

// Config describes a distributed multiplication run on the in-process
// runtime.
type Config struct {
	// Procs is the number of ranks; the process grid is the squarest
	// factorisation unless Grid is set.
	Procs int
	// Grid optionally pins the process grid (S×T with S·T = Procs).
	Grid *[2]int
	// Algorithm defaults to AlgHSUMMA.
	Algorithm Algorithm
	// Groups is HSUMMA's G (number of processor groups); 0 lets the
	// library pick the feasible count closest to √p.
	Groups int
	// BlockSize is the paper's b; it must divide the per-rank tile.
	BlockSize int
	// OuterBlockSize is the paper's B (HSUMMA only); 0 means B = b.
	OuterBlockSize int
	// Levels configures AlgMultilevel (outermost first).
	Levels []core.Level
	// Broadcast selects the collective algorithm (default binomial).
	Broadcast sched.Algorithm
	// Segments is the chain-broadcast pipeline depth.
	Segments int
}

// Stats reports aggregate traffic of a run.
type Stats struct {
	// Messages and Bytes are totals across all ranks.
	Messages int64
	Bytes    int64
	// MaxRankCommSeconds is the largest per-rank wall time spent in
	// communication calls.
	MaxRankCommSeconds float64
}

// Multiply computes A·B (n×n matrices) with the configured distributed
// algorithm: it block-distributes the inputs over the process grid, runs
// one goroutine per rank through the message-passing runtime, and gathers
// the result.
func Multiply(a, b *Matrix, cfg Config) (*Matrix, Stats, error) {
	var st Stats
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Rows != b.Rows {
		return nil, st, fmt.Errorf("hsumma: Multiply needs equal square matrices, got %dx%d and %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if cfg.Procs <= 0 {
		return nil, st, fmt.Errorf("hsumma: Procs must be positive")
	}
	grid, err := resolveGrid(cfg)
	if err != nil {
		return nil, st, err
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgHSUMMA
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = defaultBlock(n, grid)
	}

	bm, err := dist.NewBlockMap(n, n, grid)
	if err != nil {
		return nil, st, err
	}
	aT, bT := bm.Scatter(a), bm.Scatter(b)
	cT := make([]*matrix.Dense, grid.Size())
	for r := range cT {
		cT[r] = matrix.New(bm.LocalRows(), bm.LocalCols())
	}

	opts := core.Options{
		N: n, Grid: grid,
		BlockSize:      cfg.BlockSize,
		OuterBlockSize: cfg.OuterBlockSize,
		Broadcast:      cfg.Broadcast,
		Segments:       cfg.Segments,
	}
	if cfg.Algorithm == AlgHSUMMA {
		h, err := resolveGroups(grid, cfg.Groups)
		if err != nil {
			return nil, st, err
		}
		opts.Groups = h
	}

	var mu sync.Mutex
	var algErr error
	ranks, err := mpi.RunStats(grid.Size(), func(c *mpi.Comm) {
		var e error
		al, bl, cl := aT[c.Rank()], bT[c.Rank()], cT[c.Rank()]
		switch cfg.Algorithm {
		case AlgSUMMA:
			e = core.SUMMA(c, opts, al, bl, cl)
		case AlgHSUMMA:
			e = core.HSUMMA(c, opts, al, bl, cl)
		case AlgMultilevel:
			e = core.MultilevelHSUMMA(c, opts, cfg.Levels, cfg.BlockSize, al, bl, cl)
		case AlgCannon:
			e = baseline.Cannon(c, grid, n, al, bl, cl)
		case AlgFox:
			e = baseline.Fox(c, grid, n, cfg.Broadcast, al, bl, cl)
		default:
			e = fmt.Errorf("hsumma: unknown algorithm %q", cfg.Algorithm)
		}
		if e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, st, err
	}
	if algErr != nil {
		return nil, st, algErr
	}
	for _, r := range ranks {
		st.Messages += r.SentMessages
		st.Bytes += r.SentBytes
		if r.CommSeconds > st.MaxRankCommSeconds {
			st.MaxRankCommSeconds = r.CommSeconds
		}
	}
	return bm.Gather(cT), st, nil
}

// Reference computes A·B sequentially — the oracle for verification.
func Reference(a, b *Matrix) *Matrix {
	c := matrix.New(a.Rows, b.Cols)
	core.Reference(c, a, b)
	return c
}

func resolveGrid(cfg Config) (topo.Grid, error) {
	if cfg.Grid != nil {
		g, err := topo.NewGrid(cfg.Grid[0], cfg.Grid[1])
		if err != nil {
			return topo.Grid{}, err
		}
		if g.Size() != cfg.Procs {
			return topo.Grid{}, fmt.Errorf("hsumma: grid %v does not hold %d procs", g, cfg.Procs)
		}
		return g, nil
	}
	return topo.SquarestGrid(cfg.Procs)
}

func resolveGroups(g topo.Grid, G int) (topo.Hier, error) {
	if G > 0 {
		return topo.FactorGroups(g, G)
	}
	// Default: the feasible group count closest to √p, the paper's
	// analytic optimum.
	counts := topo.ValidGroupCounts(g)
	best := counts[0]
	for _, c := range counts {
		if absInt(c*c-g.Size()) < absInt(best*best-g.Size()) {
			best = c
		}
	}
	return topo.FactorGroups(g, best)
}

// defaultBlock picks the largest power-of-two block (≤64) dividing both
// tile dimensions.
func defaultBlock(n int, g topo.Grid) int {
	b := 64
	for b > 1 && ((n/g.S)%b != 0 || (n/g.T)%b != 0) {
		b /= 2
	}
	return b
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
