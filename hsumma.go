// Package hsumma is a Go reproduction of "Hierarchical Parallel Matrix
// Multiplication on Large-Scale Distributed Memory Platforms" (Quintin,
// Hasanov, Lastovetsky — ICPP 2013, arXiv:1306.4161).
//
// It provides, behind one façade:
//
//   - Multiply: distributed dense matrix multiplication (SUMMA, the paper's
//     hierarchical HSUMMA, its multilevel generalisation, and the Cannon
//     and Fox baselines) executed on an in-process MPI-like runtime whose
//     ranks are goroutines;
//   - Simulate: the *same* algorithm implementations executed on a
//     simnet-backed virtual communicator that advances Hockney virtual
//     time instead of wall-clock, reproducing the paper's large-scale
//     timing figures at rank counts no single machine could host;
//   - Predict: the paper's closed-form cost model (Tables I–II), optimal
//     group count analysis and the exascale projection;
//   - RunExperiment: the registry of reproduction experiments, one per
//     table/figure of the paper's evaluation.
//
// Every algorithm is written once against the transport-agnostic
// comm.Comm interface; Multiply and Simulate differ only in the transport
// they hand the algorithm. See README.md for a walkthrough and
// EXPERIMENTS.md for paper-vs-measured results.
package hsumma

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Matrix is a dense row-major float64 matrix (see NewMatrix, Random).
type Matrix = matrix.Dense

// Shape is the global GEMM problem shape C (M×N) += A (M×K) · B (K×N).
// Every layer of the stack carries it; the paper's square n×n benchmark
// is the SquareShape(n) special case, and every config keeps accepting a
// plain n as the square shorthand.
type Shape = matrix.Shape

// SquareShape returns the paper's square n×n×n problem shape.
func SquareShape(n int) Shape { return matrix.Square(n) }

// ErrSquareOnly is reported (via errors.Is) by Multiply, Simulate and
// Plan when a square-only baseline (Cannon, Fox) is asked to multiply a
// rectangular problem.
var ErrSquareOnly = matrix.ErrSquareOnly

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// RandomMatrix returns a deterministic pseudo-random r×c matrix with
// entries in [-1,1).
func RandomMatrix(r, c int, seed uint64) *Matrix { return matrix.Random(r, c, seed) }

// MaxAbsDiff returns the max-norm distance between two equal-shaped
// matrices — the verification metric used throughout.
func MaxAbsDiff(a, b *Matrix) float64 { return matrix.MaxAbsDiff(a, b) }

// Level describes one grouping level for AlgMultilevel (re-exported from
// the core package): the grid is partitioned into I×J groups exchanging
// panels of width BlockSize.
type Level = core.Level

// Algorithm selects a distributed multiplication algorithm (re-exported
// from the engine dispatch shared by the live and simulated paths).
type Algorithm = engine.Algorithm

// Available distributed algorithms.
const (
	AlgSUMMA      = engine.SUMMA
	AlgHSUMMA     = engine.HSUMMA
	AlgMultilevel = engine.Multilevel
	AlgCannon     = engine.Cannon
	AlgFox        = engine.Fox
	// AlgStrassen is the two-level distributed Strassen algorithm: a 2×2
	// quadrant recursion over the process grid (7 products per level
	// instead of 8) bottoming out in SUMMA — or HSUMMA when
	// StrassenInnerGroups is set — on the quadrant sub-grids. Square
	// problems and even square grids only (rectangular shapes report
	// ErrSquareOnly). See also Config.LocalStrassen for the rank-local
	// sub-cubic kernel, which composes with every algorithm.
	AlgStrassen = engine.Strassen
	// AlgAuto delegates the choice — algorithm, grid shape, group count,
	// block sizes and broadcast — to the autotuning planner (see Plan).
	// Any knob explicitly set in the config (Grid, BlockSize) is honoured
	// as a constraint; the rest are searched. Implicit resolution uses
	// the planner's Quick search space (and, above 2048 ranks, analytic
	// ranking only); for a full search call Plan yourself and apply its
	// Best candidate explicitly.
	AlgAuto = engine.Auto
)

// Engine selects a virtual execution engine for Simulate (re-exported
// from the engine dispatch). Both engines produce bit-identical virtual
// times, communication-time breakdowns and traffic counters — the engine
// parity tests assert it — so the choice only affects host wall time.
type Engine = engine.Executor

// Available virtual execution engines.
const (
	// EngineGoroutine is the SPMD goroutine runtime: one goroutine per
	// rank. Handles every algorithm and model knob.
	EngineGoroutine = engine.ExecutorGoroutine
	// EngineEvent is the discrete-event engine (internal/evsim): recorded
	// rank programs replayed by a single-threaded event loop with a
	// rank-symmetry fast path — roughly an order of magnitude faster on
	// full-scale collective-only runs.
	EngineEvent = engine.ExecutorEvent
	// EngineAuto (the default) picks the event engine for SUMMA, HSUMMA
	// and multilevel runs without overlap, goroutines otherwise.
	EngineAuto = engine.ExecutorAuto
)

// EngineByName maps a CLI-friendly name to an execution engine; the empty
// string means auto. Unknown names are an error listing the valid values.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "", string(engine.ExecutorAuto):
		return EngineAuto, nil
	case string(engine.ExecutorGoroutine):
		return EngineGoroutine, nil
	case string(engine.ExecutorEvent):
		return EngineEvent, nil
	default:
		return "", fmt.Errorf("hsumma: unknown engine %q (valid values: %s)", name, engine.ExecutorNames())
	}
}

// Broadcast names re-exported from the schedule layer.
const (
	BcastBinomial   = sched.Binomial
	BcastVanDeGeijn = sched.VanDeGeijn
	BcastFlat       = sched.Flat
	BcastBinary     = sched.Binary
	BcastChain      = sched.Chain
)

// BroadcastByName maps a CLI-friendly name to a broadcast algorithm. The
// empty string defaults to binomial; an unknown name is an error (it used
// to silently fall back to binomial, which hid typos in sweep scripts).
// The alias table itself lives in sched.ByName, shared with the serving
// daemon's request parser.
func BroadcastByName(name string) (sched.Algorithm, error) {
	alg, err := sched.ByName(name)
	if err != nil {
		return "", fmt.Errorf("hsumma: %w", err)
	}
	return alg, nil
}

// Config describes a distributed multiplication run on the in-process
// runtime.
type Config struct {
	// Procs is the number of ranks; the process grid is the squarest
	// factorisation unless Grid is set.
	Procs int
	// Grid optionally pins the process grid (S×T with S·T = Procs).
	Grid *[2]int
	// Algorithm defaults to AlgHSUMMA.
	Algorithm Algorithm
	// Groups is HSUMMA's G (number of processor groups); 0 lets the
	// library pick the feasible count closest to √p.
	Groups int
	// BlockSize is the paper's b; it must divide the per-rank tile.
	BlockSize int
	// OuterBlockSize is the paper's B (HSUMMA only); 0 means B = b.
	OuterBlockSize int
	// Levels configures AlgMultilevel (outermost first).
	Levels []core.Level
	// Broadcast selects the collective algorithm (default binomial).
	Broadcast sched.Algorithm
	// Segments is the chain-broadcast pipeline depth.
	Segments int
	// Threads is the per-rank thread budget for local multiplies — the
	// hybrid MPI+OpenMP analog: ranks with Threads > 1 run their panel
	// multiplies goroutine-parallel over disjoint C row bands. 0 and 1
	// both mean serial ranks (the historical behaviour); results are
	// bit-deterministic for any fixed value.
	Threads int
	// StrassenLevels is AlgStrassen's quadrant recursion depth (0 means
	// one level); each level needs the grid divisible by another factor
	// of 2. Ignored by other algorithms.
	StrassenLevels int
	// StrassenInnerGroups, when positive, runs HSUMMA with that many
	// groups on the quadrant sub-grids instead of SUMMA (AlgStrassen
	// only) — the paper's hierarchical grouping composed under the
	// sub-cubic recursion.
	StrassenInnerGroups int
	// LocalStrassen switches the rank-local panel multiplies to the
	// sub-cubic Strassen kernel (internal/blas) under any algorithm.
	// Worth it once per-rank tiles clear the kernel's crossover (~256 on
	// commodity hosts); AlgAuto turns it on exactly there.
	LocalStrassen bool
	// StrassenCutoff is the local kernel's recursion cutoff — leaves of
	// size ≤ cutoff run the classic packed kernel (0 = the blas default).
	StrassenCutoff int
	// Platform optionally names the machine the planner tunes for when
	// Algorithm is AlgAuto (default: the Grid'5000 preset, the closest
	// analogue of a commodity host). Ignored otherwise.
	Platform *Platform
}

// Stats reports aggregate traffic and timing of a run.
type Stats struct {
	// Messages and Bytes are totals across all ranks.
	Messages int64
	Bytes    int64
	// MaxRankCommSeconds is the largest per-rank wall time spent in
	// communication calls.
	MaxRankCommSeconds float64
	// WallSeconds is the end-to-end elapsed time of the call: setup +
	// distributed run + gather (for Session.Multiply it includes time
	// queued behind earlier requests on the session).
	WallSeconds float64
	// SetupSeconds is the pre-run staging cost this call paid: for the
	// one-shot Multiply that is spec resolution, block-map construction,
	// tile allocation and the operand scatter; for Session.Multiply only
	// the per-request share (scatter + output zeroing) remains — the rest
	// was paid once at NewSession, which is the session-reuse win these two
	// fields exist to measure.
	SetupSeconds float64
	// GemmSeconds is the largest per-rank wall time spent inside local
	// multiplies — the compute half of the paper's comm/compute breakdown.
	GemmSeconds float64
	// CommSecondsByPhase breaks the critical rank's communication time
	// (MaxRankCommSeconds) down by operation phase — "bcast" (broadcast
	// rounds), "shift" (SendRecv exchanges), "p2p" (everything else).
	// Zero-valued phases are omitted; the entries sum to
	// MaxRankCommSeconds.
	CommSecondsByPhase map[string]float64
	// BusyImbalance is max/mean per-rank busy time (communication plus
	// local multiplies): 1.0 is a perfectly even run, and the gap above 1
	// is wall time lost to the slowest rank.
	BusyImbalance float64
	// PredictedSecondsByPhase is the tune model's closed-form per-phase
	// prediction for the resolved execution (bcast/shift/p2p/gemm), the
	// yardstick CommSecondsByPhase and GemmSeconds can be audited against:
	// measured/predicted ratios near 1 mean the plan's cost model still
	// describes this machine. Predictions are evaluated for the planner's
	// target platform (Config.Platform, default Grid'5000) — on other
	// hardware the *ratios between phases* remain meaningful even when the
	// absolute seconds do not.
	PredictedSecondsByPhase map[string]float64
}

// fromSummary fills the per-rank aggregate fields from an mpi.Summary.
func (st *Stats) fromSummary(s mpi.Summary) {
	st.Messages = s.Messages
	st.Bytes = s.Bytes
	st.MaxRankCommSeconds = s.MaxComm
	st.GemmSeconds = s.MaxGemm
	st.CommSecondsByPhase = trace.CommPhaseMap(s.CommByPhase)
	st.BusyImbalance = s.Imbalance
}

// resolveSpec turns a user Config plus a problem shape into the engine's
// transport-independent Spec (shared by Multiply, Simulate and the serving
// layer — the resolution itself lives in tune.ResolveSpec so every surface
// defaults identically). The returned spec carries the *execution* shape —
// the requested shape rounded up to the algorithm's divisibility
// constraints (zero-padding preserves the product; Multiply crops the
// gathered result) — and rejects rectangular shapes on the square-only
// baselines with ErrSquareOnly, so all public surfaces report identical
// shape errors.
func resolveSpec(shape Shape, cfg Config) (engine.Spec, topo.Grid, error) {
	rp, err := cfg.resolveParams(shape)
	if err != nil {
		return engine.Spec{}, topo.Grid{}, err
	}
	spec, err := tune.ResolveSpec(rp)
	if err != nil {
		// tune's resolution errors carry no namespace; the façade owns the
		// "hsumma:" prefix (sentinels like ErrSquareOnly stay reachable
		// through the wrap).
		return engine.Spec{}, topo.Grid{}, fmt.Errorf("hsumma: %w", err)
	}
	return spec, spec.Opts.Grid, nil
}

// resolveParams adapts a public Config to the shared resolution input.
func (cfg Config) resolveParams(shape Shape) (tune.ResolveParams, error) {
	rp := tune.ResolveParams{
		Shape:               shape,
		Procs:               cfg.Procs,
		Algorithm:           cfg.Algorithm,
		Groups:              cfg.Groups,
		BlockSize:           cfg.BlockSize,
		OuterBlockSize:      cfg.OuterBlockSize,
		Levels:              cfg.Levels,
		Broadcast:           cfg.Broadcast,
		Segments:            cfg.Segments,
		Threads:             cfg.Threads,
		StrassenLevels:      cfg.StrassenLevels,
		StrassenInnerGroups: cfg.StrassenInnerGroups,
		LocalStrassen:       cfg.LocalStrassen,
		StrassenCutoff:      cfg.StrassenCutoff,
		Platform:            cfg.Platform,
	}
	if cfg.Grid != nil {
		g, err := topo.NewGrid(cfg.Grid[0], cfg.Grid[1])
		if err != nil {
			return tune.ResolveParams{}, err
		}
		rp.Grid = &g
	}
	return rp, nil
}

// Multiply computes A·B with the configured distributed algorithm: A is
// M×K, B is K×N, and the result is M×N (the paper's square benchmark is
// simply the M = N = K case). It block-distributes each operand over the
// process grid by its own shape through the dist layer, runs one
// goroutine per rank through the message-passing runtime (each rank
// executing the shared algorithm code against the live transport), and
// gathers the result. Shapes that do not divide the grid or block sizes
// are zero-padded to the execution shape and the result is cropped —
// any positive M, N, K runs.
func Multiply(a, b *Matrix, cfg Config) (*Matrix, Stats, error) {
	out, st, _, err := multiply(a, b, cfg, false)
	return out, st, err
}

// Trace is a per-run span recorder (re-exported from internal/trace): one
// timeline per rank plus a host timeline, exportable as Chrome/Perfetto
// trace-event JSON via WriteJSON.
type Trace = trace.Recorder

// MultiplyTraced is Multiply with phase tracing enabled: every broadcast
// round, shift, point-to-point call and local multiply on every rank —
// plus the host-side scatter and gather — is recorded as a span on the
// returned Trace. The recorder only observes; the result is bit-identical
// to an untraced Multiply of the same inputs.
func MultiplyTraced(a, b *Matrix, cfg Config) (*Matrix, Stats, *Trace, error) {
	return multiply(a, b, cfg, true)
}

// CriticalPathReport is the per-run critical-path attribution (re-exported
// from internal/trace): which rank and phase gate wall time, each rank's
// busy/wait split, and the top cross-rank blocking edges.
type CriticalPathReport = trace.CriticalPathReport

// CriticalPath analyses a recorded timeline — live (MultiplyTraced) or
// virtual (SimResult.Trace) — and reports what gates the run's wall time.
// Returns nil for a nil or empty recorder.
func CriticalPath(rec *Trace) *CriticalPathReport {
	if rec == nil {
		return nil
	}
	return trace.CriticalPath(rec.Spans())
}

func multiply(a, b *Matrix, cfg Config, traced bool) (*Matrix, Stats, *trace.Recorder, error) {
	start := time.Now()
	var st Stats
	if a.Cols != b.Rows {
		return nil, st, nil, fmt.Errorf("hsumma: inner dimensions differ: A is %dx%d, B is %dx%d (need A columns == B rows)",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	shape := Shape{M: a.Rows, N: b.Cols, K: a.Cols}
	spec, grid, err := resolveSpec(shape, cfg)
	if err != nil {
		return nil, st, nil, err
	}
	es := spec.Opts.Shape // execution shape (padded when needed)
	st.PredictedSecondsByPhase = spec.Predicted
	var rec *trace.Recorder
	if traced {
		rec = trace.New(grid.Size())
	}

	bmA, err := dist.NewBlockMap(es.M, es.K, grid)
	if err != nil {
		return nil, st, nil, err
	}
	bmB, err := dist.NewBlockMap(es.K, es.N, grid)
	if err != nil {
		return nil, st, nil, err
	}
	bmC, err := dist.NewBlockMap(es.M, es.N, grid)
	if err != nil {
		return nil, st, nil, err
	}
	scatterStart := time.Now()
	aT, bT := bmA.Scatter(padTo(a, es.M, es.K)), bmB.Scatter(padTo(b, es.K, es.N))
	if rec != nil {
		rec.Host(trace.PhaseScatter, rec.Since(scatterStart), time.Since(scatterStart).Seconds(),
			int64(8*(es.M*es.K+es.K*es.N)), 0)
	}
	cT := make([]*matrix.Dense, grid.Size())
	for r := range cT {
		cT[r] = matrix.New(bmC.LocalRows(), bmC.LocalCols())
	}
	// Everything up to here — resolution, maps, scatter, tile allocation —
	// is what a resident session (NewSession) pays once instead of per
	// call; the world spawn below is part of it too, but is not separable
	// from the run without skewing MaxRankCommSeconds.
	st.SetupSeconds = time.Since(start).Seconds()

	var mu sync.Mutex
	var algErr error
	ranks, err := mpi.RunStatsTraced(grid.Size(), func(c *mpi.Comm) {
		r := c.Rank()
		if e := engine.Run(mpi.AsComm(c), spec, aT[r], bT[r], cT[r]); e != nil {
			mu.Lock()
			if algErr == nil {
				algErr = e
			}
			mu.Unlock()
		}
	}, rec)
	if err != nil {
		return nil, st, nil, err
	}
	if algErr != nil {
		return nil, st, nil, algErr
	}
	st.fromSummary(mpi.Summarize(ranks))
	gatherStart := time.Now()
	out := bmC.Gather(cT)
	if es.M != shape.M || es.N != shape.N {
		out = out.View(0, 0, shape.M, shape.N).Clone()
	}
	if rec != nil {
		rec.Host(trace.PhaseGather, rec.Since(gatherStart), time.Since(gatherStart).Seconds(),
			int64(8*es.M*es.N), 0)
	}
	st.WallSeconds = time.Since(start).Seconds()
	return out, st, rec, nil
}

// padTo embeds m in the top-left corner of a zeroed r×c matrix, or
// returns m itself when it already has that shape. Zero rows/columns of A
// and B contribute nothing to the product, so running the padded problem
// and cropping C is exact.
func padTo(m *Matrix, r, c int) *Matrix {
	if m.Rows == r && m.Cols == c {
		return m
	}
	out := matrix.New(r, c)
	out.View(0, 0, m.Rows, m.Cols).CopyFrom(m)
	return out
}

// Reference computes A·B sequentially — the oracle for verification.
func Reference(a, b *Matrix) *Matrix {
	c := matrix.New(a.Rows, b.Cols)
	core.Reference(c, a, b)
	return c
}
