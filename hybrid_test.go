package hsumma_test

import (
	"testing"

	hsumma "repro"
)

// The hybrid path end to end: every algorithm runs with multi-threaded
// ranks through the full Multiply (scatter → distributed run with
// goroutine-parallel local multiplies → gather) and stays correct. Run
// under -race this is the data-race oracle for the intra-rank band split.
func TestMultiplyHybridThreads(t *testing.T) {
	const n, p = 96, 4
	a := hsumma.RandomMatrix(n, n, 301)
	b := hsumma.RandomMatrix(n, n, 302)
	want := hsumma.Reference(a, b)
	for _, alg := range []hsumma.Algorithm{hsumma.AlgSUMMA, hsumma.AlgHSUMMA, hsumma.AlgCannon, hsumma.AlgFox} {
		for _, threads := range []int{2, 4} {
			got, _, err := hsumma.Multiply(a, b, hsumma.Config{
				Procs: p, Algorithm: alg, BlockSize: 16, Threads: threads,
			})
			if err != nil {
				t.Fatalf("%s threads=%d: %v", alg, threads, err)
			}
			if d := hsumma.MaxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("%s threads=%d: differs from reference by %g", alg, threads, d)
			}
		}
	}
}

// At any fixed thread count a multiplication is bit-deterministic: the
// band split is a pure function of (rows, threads), so repeated runs of
// the same config produce identical bits.
func TestMultiplyHybridDeterministic(t *testing.T) {
	const n, p = 128, 4
	a := hsumma.RandomMatrix(n, n, 303)
	b := hsumma.RandomMatrix(n, n, 304)
	for _, threads := range []int{1, 2, 4} {
		cfg := hsumma.Config{Procs: p, Algorithm: hsumma.AlgHSUMMA, BlockSize: 32, Threads: threads}
		first, _, err := hsumma.Multiply(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		again, _, err := hsumma.Multiply(a, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hsumma.MaxAbsDiff(first, again) != 0 {
			t.Fatalf("threads=%d: repeated runs are not bit-identical", threads)
		}
	}
}

// Threads=0 and Threads=1 are the same serial configuration: identical
// bits and an identical session key (so pre-hybrid clients keep hitting
// the sessions they always did).
func TestMultiplyThreadsZeroIsSerial(t *testing.T) {
	const n, p = 64, 4
	a := hsumma.RandomMatrix(n, n, 305)
	b := hsumma.RandomMatrix(n, n, 306)
	zero, _, err := hsumma.Multiply(a, b, hsumma.Config{Procs: p, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := hsumma.Multiply(a, b, hsumma.Config{Procs: p, BlockSize: 16, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hsumma.MaxAbsDiff(zero, one) != 0 {
		t.Fatal("Threads 0 and 1 differ")
	}
}

// A hybrid simulation must report strictly less compute time than the
// serial run of the same spec, with communication untouched — the virtual
// engines charge flops/Speedup(threads).
func TestSimulateHybridThreads(t *testing.T) {
	base := hsumma.SimConfig{
		N: 1024, Procs: 16, Algorithm: hsumma.AlgSUMMA, BlockSize: 64,
		Machine: hsumma.PlatformGrid5000().Model,
	}
	serial, err := hsumma.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	hybrid := base
	hybrid.Threads = 4
	fast, err := hsumma.Simulate(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Comm is unchanged up to clock-arithmetic rounding: threaded compute
	// shifts collective start times, so the end-start comm sums can differ
	// in the last ulps.
	if d := fast.Comm - serial.Comm; d > 1e-12*serial.Comm || d < -1e-12*serial.Comm {
		t.Fatalf("threads changed simulated comm: %g vs %g", fast.Comm, serial.Comm)
	}
	if fast.Compute >= serial.Compute {
		t.Fatalf("4 threads did not shorten simulated compute: %g vs %g", fast.Compute, serial.Compute)
	}
	if fast.Total >= serial.Total {
		t.Fatalf("4 threads did not shorten simulated total: %g vs %g", fast.Total, serial.Total)
	}
}
