package hsumma

import (
	"testing"
)

// AlgAuto on the live path: the planner picks the whole configuration and
// the result must still verify against sequential GEMM.
func TestMultiplyAuto(t *testing.T) {
	n := 128
	a := RandomMatrix(n, n, 3)
	b := RandomMatrix(n, n, 4)
	got, stats, err := Multiply(a, b, Config{Procs: 16, Algorithm: AlgAuto})
	if err != nil {
		t.Fatal(err)
	}
	if diff := MaxAbsDiff(got, Reference(a, b)); diff > 1e-9 {
		t.Fatalf("auto-planned multiply wrong by %g", diff)
	}
	if stats.Messages == 0 {
		t.Fatal("auto-planned multiply moved no messages")
	}
	// An explicit platform constraint must also work.
	pf := PlatformBGPCalibrated()
	if _, _, err := Multiply(a, b, Config{Procs: 16, Algorithm: AlgAuto, Platform: &pf}); err != nil {
		t.Fatal(err)
	}
}

// AlgAuto on the simulated path: the chosen configuration is echoed and
// must be at least as good as the SUMMA default for the same problem.
func TestSimulateAuto(t *testing.T) {
	pf := PlatformBGPCalibrated()
	auto, err := Simulate(SimConfig{N: 1024, Procs: 64, Algorithm: AlgAuto, Machine: pf.Model, Platform: &pf})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algorithm == AlgAuto || auto.Algorithm == "" {
		t.Fatalf("auto simulation did not echo a concrete algorithm: %+v", auto)
	}
	if auto.Total <= 0 {
		t.Fatalf("degenerate auto simulation: %+v", auto)
	}
	summa, err := Simulate(SimConfig{N: 1024, Procs: 64, Algorithm: AlgSUMMA, BlockSize: 64, Machine: pf.Model})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Total > summa.Total*1.0001 {
		t.Fatalf("auto pick (%s, %.4g s) slower than the SUMMA default (%.4g s)",
			auto.Algorithm, auto.Total, summa.Total)
	}
}

// A Platform alone must be a complete machine description: the Hockney
// model defaults from it instead of simulating on a zero-cost machine.
func TestSimulateDefaultsMachineFromPlatform(t *testing.T) {
	pf := PlatformBGPCalibrated()
	res, err := Simulate(SimConfig{N: 1024, Procs: 64, Algorithm: AlgAuto, Platform: &pf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || res.Comm <= 0 {
		t.Fatalf("zero-cost simulation slipped through: %+v", res)
	}
}

// A cached plan must be caller-owned: re-sorting it cannot corrupt the
// cache for later hits.
func TestPlanCacheIsolation(t *testing.T) {
	cfg := PlanConfig{Platform: PlatformExascale(), N: 256, Procs: 16, Quick: true}
	first, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Ranked[0].Candidate.String()
	// Vandalise the returned plan.
	for i, j := 0, len(first.Ranked)-1; i < j; i, j = i+1, j-1 {
		first.Ranked[i], first.Ranked[j] = first.Ranked[j], first.Ranked[i]
	}
	second, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("expected a cache hit")
	}
	if got := second.Ranked[0].Candidate.String(); got != want {
		t.Fatalf("cache corrupted by caller mutation: Ranked[0] = %s, want %s", got, want)
	}
}

// The public Plan API must rank refined candidates and report cache hits
// through the shared counters.
func TestPlanAPI(t *testing.T) {
	pf := PlatformGrid5000()
	cfg := PlanConfig{Platform: pf, N: 512, Procs: 16, Quick: true}
	before := PlannerCounters()
	pl, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Ranked) == 0 || !pl.Best.Refined {
		t.Fatalf("degenerate plan: %+v", pl)
	}
	for i := 1; i < len(pl.Ranked); i++ {
		if pl.Ranked[i].Err == "" && pl.Ranked[i-1].SimTotal > pl.Ranked[i].SimTotal+1e-12 {
			t.Fatalf("plan not ranked: #%d (%.6g) above #%d (%.6g)",
				i-1, pl.Ranked[i-1].SimTotal, i, pl.Ranked[i].SimTotal)
		}
	}
	again, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !again.FromCache {
		t.Fatal("repeated plan not served from cache")
	}
	after := PlannerCounters()
	if after.CacheHits <= before.CacheHits {
		t.Fatalf("cache hits did not advance: %+v -> %+v", before, after)
	}
}
